package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"shef/internal/sdp"
)

// ---------------------------------------------------------------------
// Degraded-mode throughput: the resilience counterpart of the cluster
// scaling sweep. A replicated fleet serves the same offered load twice —
// once healthy, once with a shard crashed — and the retained fraction is
// the headline: replication and replica fallback must keep the cluster
// serving through a single-node failure, not just surviving it.

// DegradedRow reports one healthy-vs-degraded comparison.
type DegradedRow struct {
	Shards   int
	Replicas int
	Workers  int
	// Ops is the per-window operation count (same offered load both
	// windows).
	Ops int
	// HealthyOpsPerSec and DegradedOpsPerSec are real wall-clock rates
	// for the two windows; RetainX is degraded/healthy — the fraction of
	// serving capacity the fleet keeps through one crashed shard.
	HealthyOpsPerSec  float64
	DegradedOpsPerSec float64
	RetainX           float64
	// DegradedWrites and FallbackReads are the cluster's own degraded-
	// mode accounting for the failure window — nonzero values prove the
	// degraded window actually exercised quorum writes and replica
	// fallback rather than dodging the dead shard.
	DegradedWrites uint64
	FallbackReads  uint64
	// Repairs counts the anti-entropy rewrites that reconverged the
	// fleet after the shard restarted.
	Repairs uint64
}

// degradedClusterConfig is the replicated serving fleet under test:
// every file on three shards, majority write quorum (2), so any single
// shard loss leaves every file writable and readable.
func degradedClusterConfig(shards int) sdp.ClusterConfig {
	return sdp.ClusterConfig{
		Shards:   shards,
		Node:     clusterNodeConfig(),
		Replicas: 3,
		Retry: sdp.RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: 200 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
			Seed:        1,
		},
		OpTimeout: 10 * time.Second,
	}
}

// runDegradedWindow drives the shared Put/Get mix (1:3, like the scaling
// sweep) for one measured window and returns the real ops/sec.
func runDegradedWindow(c *sdp.Cluster, files []*clusterFile, workers, opsPerWorker int) (float64, error) {
	errs := make([]error, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			phase := w * len(files) / workers
			for i := 0; i < opsPerWorker; i++ {
				f := files[(phase+i)%len(files)]
				if i%(clusterGetsPut+1) == 0 {
					if err := c.Put("load", f.name, f.payload); err != nil {
						errs[w] = err
						return
					}
				} else if _, err := c.Get("load", f.name); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(workers*opsPerWorker) / elapsed.Seconds(), nil
}

// DegradedThroughput measures a four-shard, three-replica fleet at a
// fixed offered load, healthy and then with one shard crashed, restarts
// the shard, lets anti-entropy reconverge, and verifies every payload
// round-trips. The degraded window runs against the failure exactly as a
// serving tier would see it: the health detector discovering the dead
// shard, reads falling back replica-by-replica, writes acking at quorum.
func DegradedThroughput(tc TimerControl, scale Scale) (DegradedRow, error) {
	if tc != nil {
		tc.StopTimer()
		defer tc.StartTimer()
	}
	const shards, workers = 4, clusterWorkers8
	opsPerWorker := clusterOps(scale)
	c, err := sdp.NewCluster(degradedClusterConfig(shards))
	if err != nil {
		return DegradedRow{}, err
	}
	if err := c.RegisterUser("load", []byte("load-key")); err != nil {
		return DegradedRow{}, err
	}
	files := make([]*clusterFile, clusterFiles)
	for i, name := range clusterFileSet() {
		payload := make([]byte, clusterPayload)
		for j := range payload {
			payload[j] = byte(j + i*41)
		}
		files[i] = &clusterFile{name: name, payload: payload}
		if err := c.Put("load", name, payload); err != nil {
			return DegradedRow{}, err
		}
		if _, err := c.Get("load", name); err != nil {
			return DegradedRow{}, err
		}
	}
	c.ResetStats()
	if tc != nil {
		tc.StartTimer()
	}
	healthy, err := runDegradedWindow(c, files, workers, opsPerWorker)
	if tc != nil {
		tc.StopTimer()
	}
	if err != nil {
		return DegradedRow{}, err
	}

	// One shard dies; the same offered load runs again.
	const crashed = 1
	c.CrashShard(crashed)
	c.ResetStats()
	if tc != nil {
		tc.StartTimer()
	}
	degraded, err := runDegradedWindow(c, files, workers, opsPerWorker)
	if tc != nil {
		tc.StopTimer()
	}
	if err != nil {
		return DegradedRow{}, fmt.Errorf("experiments: degraded window: %w", err)
	}
	st := c.Stats()

	// Recovery: restart, reconverge, verify every payload survived the
	// whole exercise byte-for-byte.
	if err := c.RestartShard(crashed); err != nil {
		return DegradedRow{}, err
	}
	if err := c.Sync(); err != nil {
		return DegradedRow{}, err
	}
	for _, f := range files {
		got, err := c.Get("load", f.name)
		if err != nil {
			return DegradedRow{}, err
		}
		if !bytes.Equal(got, f.payload) {
			return DegradedRow{}, fmt.Errorf("experiments: %s corrupted through the degraded window", f.name)
		}
	}
	row := DegradedRow{
		Shards:            shards,
		Replicas:          3,
		Workers:           workers,
		Ops:               workers * opsPerWorker,
		HealthyOpsPerSec:  healthy,
		DegradedOpsPerSec: degraded,
		DegradedWrites:    st.DegradedWrites,
		FallbackReads:     st.FallbackReads,
		Repairs:           c.Stats().Repairs,
	}
	if healthy > 0 {
		row.RetainX = degraded / healthy
	}
	return row, nil
}
