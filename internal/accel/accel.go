// Package accel provides the accelerator framework and the six workloads
// the paper evaluates (§6.2): vector add and matrix multiply
// (microbenchmarks, Figure 5), a convolution layer, Rosetta digit
// recognition, affine transformation, DNNWeaver-style LeNet inference, and
// a Bitcoin miner (Figure 6 / Table 3).
//
// Accelerators are functional: they really compute over the bytes behind
// their AXI ports, so every workload doubles as an end-to-end test of the
// Shield's transparency. Performance comes from the cycle model: each
// workload accounts its datapath compute, and the harness combines it with
// the memory-path time reported by the Shield or the bare Shell.
package accel

import (
	"fmt"
	"math/rand"

	"shef/internal/axi"
	"shef/internal/crypto/aesx"
	"shef/internal/shield"
)

// Ctx is the execution context handed to a running accelerator.
type Ctx struct {
	// Mem is the accelerator's AXI4 view of device memory: the Shield's
	// plaintext interface when shielded, the Shell's port when bare.
	Mem axi.MemoryPort
	// Regs is the AXI4-Lite register file (nil for bare runs without one).
	Regs axi.RegisterPort

	computeCycles uint64
}

// Compute accounts datapath busy-cycles (MAC arrays, hash cores, ...).
// Compute overlaps memory traffic: the harness takes the max.
func (c *Ctx) Compute(cycles uint64) { c.computeCycles += cycles }

// ReadStream reads a bulk transfer through the port's pipelined streaming
// path when it has one (the Shield's burst engine, the bare cache's
// batched fetch), falling back to a plain burst otherwise. Workloads use
// it for multi-chunk sequential transfers.
func (c *Ctx) ReadStream(addr uint64, buf []byte) error {
	_, err := axi.ReadAuto(c.Mem, addr, buf)
	return err
}

// WriteStream writes a bulk transfer through the port's streaming path.
func (c *Ctx) WriteStream(addr uint64, data []byte) error {
	_, err := axi.WriteAuto(c.Mem, addr, data)
	return err
}

// ComputeCycles reports accumulated datapath time.
func (c *Ctx) ComputeCycles() uint64 { return c.computeCycles }

// Variant selects the Shield engine flavour a workload is compiled with —
// the x-axis of Figure 6.
type Variant struct {
	KeySize aesx.KeySize
	SBox    aesx.SBoxParallelism
	// PMAC swaps the HMAC engines for PMAC (the DNNWeaver optimisation,
	// §6.2.4, and SDP configs C-E, §6.2.3).
	PMAC bool
}

func (v Variant) String() string {
	s := fmt.Sprintf("%s/%s", v.KeySize, v.SBox)
	if v.PMAC {
		s += "-PMAC"
	}
	return s
}

// MAC returns the MAC kind the variant selects.
func (v Variant) MAC() shield.MACKind {
	if v.PMAC {
		return shield.PMAC
	}
	return shield.HMAC
}

// The four engine configurations of Figure 6, plus the PMAC variant.
var (
	V128x16     = Variant{KeySize: aesx.AES128, SBox: aesx.SBox16x}
	V256x16     = Variant{KeySize: aesx.AES256, SBox: aesx.SBox16x}
	V128x4      = Variant{KeySize: aesx.AES128, SBox: aesx.SBox4x}
	V256x4      = Variant{KeySize: aesx.AES256, SBox: aesx.SBox4x}
	V128x16PMAC = Variant{KeySize: aesx.AES128, SBox: aesx.SBox16x, PMAC: true}
)

// Figure6Variants lists the AES engine configurations of Figure 6.
var Figure6Variants = []Variant{V128x16, V256x16, V128x4, V256x4}

// Workload is one benchmark accelerator.
type Workload interface {
	// Name is the registry key ("vecadd", "conv", ...).
	Name() string
	// ShieldConfig returns the paper's per-workload Shield configuration
	// for an engine variant (§6.2.4 describes each).
	ShieldConfig(v Variant) shield.Config
	// Inputs generates the region images the Data Owner provisions.
	Inputs(rng *rand.Rand) map[string][]byte
	// Run executes the accelerator against its context.
	Run(ctx *Ctx) error
	// OutputRegions names the regions holding results.
	OutputRegions() []string
	// Check verifies output images (plaintext, after the Data Owner
	// decrypts them).
	Check(inputs, outputs map[string][]byte) error
}

// Registry maps design names to constructors, parameterised the way a
// bitstream manifest carries options.
var registry = map[string]func(params map[string]string) (Workload, error){}

// Register adds a design factory. Called from init functions.
func Register(name string, f func(params map[string]string) (Workload, error)) {
	if _, dup := registry[name]; dup {
		panic("accel: duplicate design " + name)
	}
	registry[name] = f
}

// New instantiates a registered design.
func New(name string, params map[string]string) (Workload, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("accel: unknown design %q", name)
	}
	return f(params)
}

// Designs lists registered design names.
func Designs() []string {
	var out []string
	for k := range registry {
		out = append(out, k)
	}
	return out
}
