package accel

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"

	"shef/internal/shield"
)

// MatMul is the second §6.2.2 microbenchmark: C = A × B over int32
// matrices. Matrix multiplication "involves more computation per data
// accessed" than vector add, so Shield overheads are less pronounced
// (the paper reports a maximum of 1.26x for AES/4x).
type MatMul struct {
	// N is the square matrix dimension.
	N int
	// Lanes is the MAC-array width of the datapath (MACs per cycle).
	Lanes int
}

const (
	mmChunk   = 512
	mmABase   = 0x0000_0000
	mmBBase   = 0x1000_0000
	mmOutBase = 0x2000_0000
)

// NewMatMul builds the workload; params may set "n" and "lanes".
func NewMatMul(params map[string]string) (Workload, error) {
	m := &MatMul{N: 128, Lanes: 32}
	if s, ok := params["n"]; ok {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 || n%mmChunk/4 < 0 {
			return nil, fmt.Errorf("accel: matmul n %q invalid", s)
		}
		m.N = n
	}
	if s, ok := params["lanes"]; ok {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("accel: matmul lanes %q invalid", s)
		}
		m.Lanes = n
	}
	if m.N%128 != 0 {
		return nil, fmt.Errorf("accel: matmul n=%d must be a multiple of 128 (chunk alignment)", m.N)
	}
	return m, nil
}

func init() { Register("matmul", NewMatMul) }

// Name implements Workload.
func (m *MatMul) Name() string { return "matmul" }

func (m *MatMul) matBytes() int { return m.N * m.N * 4 }

// ShieldConfig gives A and B streaming engine sets with a buffer large
// enough to hold rows/columns, and an output set. Two engine sets per
// input match the microbenchmark's four-set layout.
func (m *MatMul) ShieldConfig(variant Variant) shield.Config {
	half := uint64(m.matBytes() / 2)
	mk := func(name string, base uint64, size uint64, buf int) shield.RegionConfig {
		return shield.RegionConfig{
			Name: name, Base: base, Size: size, ChunkSize: mmChunk,
			AESEngines: 1, SBox: variant.SBox, KeySize: variant.KeySize,
			MAC: variant.MAC(), BufferBytes: buf,
		}
	}
	// A streams row by row (double buffer); B is reused n times, so its
	// partitions get buffers that hold them entirely — the systolic
	// array's stationary operand.
	rowBuf := 4 * m.N * 4
	return shield.Config{
		Regions: []shield.RegionConfig{
			mk("a0", mmABase, half, rowBuf),
			mk("a1", mmABase+half, half, rowBuf),
			mk("b0", mmBBase, half, int(half)),
			mk("b1", mmBBase+half, half, int(half)),
			mk("o", mmOutBase, uint64(m.matBytes()), 2*mmChunk),
		},
		Registers: 8,
	}
}

// Inputs generates A and B, each split across its two partitions.
func (m *MatMul) Inputs(rng *rand.Rand) map[string][]byte {
	half := m.matBytes() / 2
	out := make(map[string][]byte, 4)
	for _, name := range []string{"a0", "a1", "b0", "b1"} {
		img := make([]byte, half)
		rng.Read(img)
		out[name] = img
	}
	return out
}

// element addresses: A row-major at mmABase (contiguous across the two
// partition regions), B row-major at mmBBase.
func (m *MatMul) readRow(ctx *Ctx, base uint64, row int, buf []byte) error {
	_, err := ctx.Mem.ReadBurst(base+uint64(row*m.N*4), buf)
	return err
}

// streamRow reads a row through the pipelined streaming path: right for
// the moving operand (A, read once), wrong for the stationary operand (B,
// whose rows live in the on-chip buffer and must stay cached).
func (m *MatMul) streamRow(ctx *Ctx, base uint64, row int, buf []byte) error {
	return ctx.ReadStream(base+uint64(row*m.N*4), buf)
}

// Run performs blocked matrix multiply: for each row of A, stream the row,
// then stream B column blocks. B is accessed row-wise per k to stay
// burst-friendly (the classic ikj loop).
func (m *MatMul) Run(ctx *Ctx) error {
	n := m.N
	rowA := make([]byte, n*4)
	rowB := make([]byte, n*4)
	acc := make([]uint32, n)
	out := make([]byte, n*4)
	for i := 0; i < n; i++ {
		if err := m.streamRow(ctx, mmABase, i, rowA); err != nil {
			return err
		}
		for k := range acc {
			acc[k] = 0
		}
		for k := 0; k < n; k++ {
			aik := binary.LittleEndian.Uint32(rowA[k*4:])
			if err := m.readRow(ctx, mmBBase, k, rowB); err != nil {
				return err
			}
			for j := 0; j < n; j++ {
				acc[j] += aik * binary.LittleEndian.Uint32(rowB[j*4:])
			}
		}
		// n² MACs for this output row, m.Lanes MACs per cycle.
		ctx.Compute(uint64(n*n) / uint64(m.Lanes))
		for j := 0; j < n; j++ {
			binary.LittleEndian.PutUint32(out[j*4:], acc[j])
		}
		if err := ctx.WriteStream(mmOutBase+uint64(i*n*4), out); err != nil {
			return err
		}
	}
	return nil
}

// OutputRegions implements Workload.
func (m *MatMul) OutputRegions() []string { return []string{"o"} }

// Check recomputes the product on the host.
func (m *MatMul) Check(inputs, outputs map[string][]byte) error {
	n := m.N
	a := append(append([]byte{}, inputs["a0"]...), inputs["a1"]...)
	b := append(append([]byte{}, inputs["b0"]...), inputs["b1"]...)
	o := outputs["o"]
	at := func(img []byte, r, c int) uint32 { return binary.LittleEndian.Uint32(img[(r*n+c)*4:]) }
	// Spot-check a deterministic sample of entries; full n³ verification
	// would dominate test time for large n.
	step := n/8 + 1
	for i := 0; i < n; i += step {
		for j := 0; j < n; j += step {
			var want uint32
			for k := 0; k < n; k++ {
				want += at(a, i, k) * at(b, k, j)
			}
			if got := at(o, i, j); got != want {
				return fmt.Errorf("C[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
	return nil
}
