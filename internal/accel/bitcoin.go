package accel

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"

	"shef/internal/crypto/sha256x"
	"shef/internal/shield"
)

// Bitcoin is the Figure 6 register-interface workload (§6.2.4): a miner
// that "operates on small data (a 76 byte block header) and only outputs a
// 4 byte nonce". It uses no device memory at all — only the Shield's
// secured AXI4-Lite register file with one AES and one HMAC engine — and
// because the hash grind dominates, the paper observes almost no overhead.
type Bitcoin struct {
	// Difficulty is the number of leading zero bits the double-SHA-256 of
	// the 80-byte header must have. The paper runs difficulty 24; the
	// default is lower so functional runs stay fast, with the cycle model
	// unchanged per attempted nonce.
	Difficulty int
	// Header is the 76-byte block header prefix (nonce appended).
	Header [76]byte
	// MaxNonce bounds the search (guards tests against unlucky headers).
	MaxNonce uint32
}

// Register map of the miner.
const (
	btcRegCtrl   = 0  // 1 = start
	btcRegStatus = 1  // 1 = done
	btcRegNonce  = 2  // found nonce
	btcRegHdr0   = 4  // header words 4..13 (76 bytes, little endian)
	btcHdrRegs   = 10 // ceil(76/8)
)

// NewBitcoin builds the workload; params: "difficulty".
func NewBitcoin(params map[string]string) (Workload, error) {
	b := &Bitcoin{Difficulty: 14, MaxNonce: 1 << 28}
	if s, ok := params["difficulty"]; ok {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 || n > 40 {
			return nil, fmt.Errorf("accel: bitcoin difficulty %q invalid", s)
		}
		b.Difficulty = n
	}
	return b, nil
}

func init() { Register("bitcoin", NewBitcoin) }

// Name implements Workload.
func (b *Bitcoin) Name() string { return "bitcoin" }

// ShieldConfig: no memory regions, register interface only.
func (b *Bitcoin) ShieldConfig(variant Variant) shield.Config {
	return shield.Config{Registers: 16}
}

// Inputs seeds the header (regions stay empty; the header travels through
// the register file inside Run).
func (b *Bitcoin) Inputs(rng *rand.Rand) map[string][]byte {
	rng.Read(b.Header[:])
	return map[string][]byte{}
}

// hashCyclesPerNonce is the miner datapath cost per attempted nonce: the
// 80-byte header is two SHA-256 blocks, the second pass one more.
const hashCyclesPerNonce = 3 * sha256x.CyclesPerBlock

// meetsDifficulty reports whether digest has at least d leading zero bits.
func meetsDifficulty(digest [32]byte, d int) bool {
	for i := 0; i < d; i++ {
		if digest[i/8]&(0x80>>(i%8)) != 0 {
			return false
		}
	}
	return true
}

// Run loads the header through the register file, grinds nonces with real
// double-SHA-256, and posts the winning nonce back to a register.
func (b *Bitcoin) Run(ctx *Ctx) error {
	// Host → accelerator: header words via the (secured) register file.
	for i := 0; i < btcHdrRegs; i++ {
		var w [8]byte
		copy(w[:], b.Header[i*8:min(76, i*8+8)])
		if _, err := ctx.Regs.WriteReg(btcRegHdr0+i, binary.LittleEndian.Uint64(w[:])); err != nil {
			return err
		}
	}
	if _, err := ctx.Regs.WriteReg(btcRegCtrl, 1); err != nil {
		return err
	}
	var full [80]byte
	copy(full[:76], b.Header[:])
	tried := uint64(0)
	found := false
	var nonce uint32
	for n := uint32(0); n < b.MaxNonce; n++ {
		binary.LittleEndian.PutUint32(full[76:], n)
		tried++
		if meetsDifficulty(sha256x.DoubleDigest(full[:]), b.Difficulty) {
			nonce, found = n, true
			break
		}
	}
	ctx.Compute(tried * hashCyclesPerNonce)
	if !found {
		return fmt.Errorf("accel: no nonce below %d met difficulty %d", b.MaxNonce, b.Difficulty)
	}
	if _, err := ctx.Regs.WriteReg(btcRegNonce, uint64(nonce)); err != nil {
		return err
	}
	if _, err := ctx.Regs.WriteReg(btcRegStatus, 1); err != nil {
		return err
	}
	return nil
}

// OutputRegions implements Workload (none: result is a register).
func (b *Bitcoin) OutputRegions() []string { return nil }

// Check re-verifies the found nonce from the header state.
func (b *Bitcoin) Check(inputs, outputs map[string][]byte) error {
	// The nonce lives in the register file, which the harness does not
	// export; re-grind the first candidate to confirm the search space is
	// sound. Correctness of the register path is covered by the shield
	// register tests; here we assert the mining predicate itself.
	var full [80]byte
	copy(full[:76], b.Header[:])
	for n := uint32(0); n < b.MaxNonce; n++ {
		binary.LittleEndian.PutUint32(full[76:], n)
		if meetsDifficulty(sha256x.DoubleDigest(full[:]), b.Difficulty) {
			return nil
		}
	}
	return fmt.Errorf("accel: header admits no nonce within bound")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// doubleSHA exposes the miner's hash for verification in tests.
func doubleSHA(b []byte) [32]byte { return sha256x.DoubleDigest(b) }
