package accel

import (
	"sort"
	"testing"

	"shef/internal/perf"
)

// TestAllWorkloadsFunctional runs every registered workload bare and
// shielded and verifies outputs (Check runs inside the harness). This is
// the end-to-end proof that the Shield is transparent to accelerators.
func TestAllWorkloadsFunctional(t *testing.T) {
	params := perf.Default()
	names := Designs()
	sort.Strings(names)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := New(name, smallParams(name))
			if err != nil {
				t.Fatal(err)
			}
			bare, err := RunBare(w, params, 1)
			if err != nil {
				t.Fatalf("bare: %v", err)
			}
			// Fresh instance: workloads may carry run state (e.g. the
			// bitcoin header is generated in Inputs).
			w2, _ := New(name, smallParams(name))
			sec, err := RunShielded(w2, V128x16, params, 1)
			if err != nil {
				t.Fatalf("shielded: %v", err)
			}
			ov := Overhead(sec, bare)
			if ov < 0.99 {
				t.Errorf("overhead %.2f < 1: shielded run faster than bare", ov)
			}
			if ov > 20 {
				t.Errorf("overhead %.2f implausibly high", ov)
			}
			t.Logf("%s: bare=%d cycles, shielded=%d cycles, overhead=%.2fx",
				name, bare.Cycles, sec.Cycles, ov)
		})
	}
}

// smallParams shrinks workloads for fast functional testing.
func smallParams(name string) map[string]string {
	switch name {
	case "vecadd":
		return map[string]string{"bytes": "65536"}
	case "matmul":
		return map[string]string{"n": "128"}
	case "conv":
		return map[string]string{"cin": "8", "cout": "16", "batch": "1"}
	case "digitrec":
		return map[string]string{"train": "2048", "tests": "64"}
	case "affine":
		return map[string]string{"dim": "128"}
	case "dnnweaver":
		return map[string]string{"batch": "8"}
	case "bitcoin":
		return map[string]string{"difficulty": "10"}
	}
	return nil
}

func TestRegistry(t *testing.T) {
	want := []string{"affine", "bitcoin", "conv", "digitrec", "dnnweaver", "matmul", "vecadd"}
	got := Designs()
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry has %v, want %v", got, want)
		}
	}
	if _, err := New("nonexistent", nil); err == nil {
		t.Fatal("unknown design instantiated")
	}
}

func TestParamValidation(t *testing.T) {
	bad := map[string][]map[string]string{
		"vecadd":    {{"bytes": "-1"}, {"bytes": "x"}},
		"matmul":    {{"n": "100"}, {"lanes": "0"}},
		"conv":      {{"cin": "0"}},
		"digitrec":  {{"train": "no"}},
		"affine":    {{"dim": "100"}},
		"dnnweaver": {{"batch": "-3"}},
		"bitcoin":   {{"difficulty": "99"}},
	}
	for name, cases := range bad {
		for _, p := range cases {
			if _, err := New(name, p); err == nil {
				t.Errorf("%s accepted %v", name, p)
			}
		}
	}
}

// TestVariantEffects asserts the first-order model properties Figure 6
// depends on: more S-box parallelism is never slower; AES-256 is never
// faster than AES-128.
func TestVariantEffects(t *testing.T) {
	params := perf.Default()
	w := func() Workload {
		v, _ := New("vecadd", map[string]string{"bytes": "262144"})
		return v
	}
	run := func(v Variant) uint64 {
		r, err := RunShielded(w(), v, params, 3)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	c4 := run(V128x4)
	c16 := run(V128x16)
	k256 := run(V256x16)
	if c16 > c4 {
		t.Errorf("16x S-box (%d) slower than 4x (%d)", c16, c4)
	}
	if k256 < c16 {
		t.Errorf("AES-256 (%d) faster than AES-128 (%d)", k256, c16)
	}
}

// TestComputeOverlap checks the time composition: a compute-dominated
// workload hides its memory time.
func TestComputeOverlap(t *testing.T) {
	if c := combine(100, 50, 500); c != 600 {
		t.Errorf("combine = %d, want 600", c)
	}
	if c := combine(100, 500, 50); c != 600 {
		t.Errorf("combine = %d, want 600", c)
	}
}

func TestOverheadZeroBase(t *testing.T) {
	if Overhead(RunResult{Cycles: 5}, RunResult{}) != 0 {
		t.Fatal("zero-base overhead should be 0")
	}
}
