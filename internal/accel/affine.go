package accel

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"

	"shef/internal/shield"
)

// Affine is the Figure 6 affine-transformation workload from the Xilinx
// vision suite (§6.2.4): an inverse-mapped geometric transform over a
// 512×512 image. It "reads non-sequential data, but reads each address
// once with no writes", so integrity counters are disabled; data moves in
// consistent 64-byte chunks through 8 input engine sets (32 KB buffer
// total) and 4 output sets (16 KB). Reported overheads: 1.41x-2.22x.
type Affine struct {
	// Dim is the square image dimension in pixels (4 bytes per pixel).
	Dim int
	// A fixed-point inverse transform (rotation + scale), Q16.16.
	M00, M01, M10, M11 int64
}

const (
	afChunk   = 64
	afInBase  = 0x0000_0000
	afOutBase = 0x1000_0000
	afInSets  = 8
	afOutSets = 4
)

// NewAffine builds the workload; params: "dim".
func NewAffine(params map[string]string) (Workload, error) {
	a := &Affine{
		Dim: 256,
		// ~15° rotation with 0.9 scaling, in Q16.16.
		M00: 56990, M01: -15267, M10: 15267, M11: 56990,
	}
	if s, ok := params["dim"]; ok {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 || n%64 != 0 {
			return nil, fmt.Errorf("accel: affine dim %q invalid (need positive multiple of 64)", s)
		}
		a.Dim = n
	}
	return a, nil
}

func init() { Register("affine", NewAffine) }

// Name implements Workload.
func (a *Affine) Name() string { return "affine" }

func (a *Affine) imgBytes() int { return a.Dim * a.Dim * 4 }

// ShieldConfig splits the input across 8 engine sets and the output across
// 4, with 64-byte chunks matching the access granularity.
func (a *Affine) ShieldConfig(variant Variant) shield.Config {
	var regions []shield.RegionConfig
	split := func(prefix string, base uint64, parts, bufTotal int) {
		part := alignUp(a.imgBytes()/parts, afChunk)
		for i := 0; i < parts; i++ {
			regions = append(regions, shield.RegionConfig{
				Name:        fmt.Sprintf("%s%d", prefix, i),
				Base:        base + uint64(i*part),
				Size:        uint64(part),
				ChunkSize:   afChunk,
				AESEngines:  1,
				SBox:        variant.SBox,
				KeySize:     variant.KeySize,
				MAC:         variant.MAC(),
				BufferBytes: bufTotal / parts,
			})
		}
	}
	split("in", afInBase, afInSets, 32<<10)
	split("out", afOutBase, afOutSets, 16<<10)
	return shield.Config{Regions: regions, Registers: 8}
}

// Inputs generates the source image across its partitions.
func (a *Affine) Inputs(rng *rand.Rand) map[string][]byte {
	part := alignUp(a.imgBytes()/afInSets, afChunk)
	out := make(map[string][]byte, afInSets)
	for i := 0; i < afInSets; i++ {
		img := make([]byte, part)
		rng.Read(img)
		out[fmt.Sprintf("in%d", i)] = img
	}
	return out
}

// srcPixel computes the inverse-mapped source coordinate for an output
// pixel, in Q16.16 around the image centre, nearest-neighbour sampled.
func (a *Affine) srcPixel(x, y int) (int, int, bool) {
	cx, cy := int64(a.Dim/2), int64(a.Dim/2)
	dx, dy := int64(x)-cx, int64(y)-cy
	sx := (a.M00*dx + a.M01*dy) >> 16
	sy := (a.M10*dx + a.M11*dy) >> 16
	px, py := int(sx+cx), int(sy+cy)
	if px < 0 || px >= a.Dim || py < 0 || py >= a.Dim {
		return 0, 0, false
	}
	return px, py, true
}

func (a *Affine) inAddr(px, py int) uint64 {
	off := (py*a.Dim + px) * 4
	part := alignUp(a.imgBytes()/afInSets, afChunk)
	p := off / part
	return afInBase + uint64(p*part+off%part)
}

// Run walks the output raster, inverse-maps each pixel, reads the source
// pixel through the Shield (64-byte chunk granularity does the caching),
// and streams the output row out.
func (a *Affine) Run(ctx *Ctx) error {
	rowOut := make([]byte, a.Dim*4)
	var px4 [4]byte
	outPart := alignUp(a.imgBytes()/afOutSets, afChunk)
	for y := 0; y < a.Dim; y++ {
		for x := 0; x < a.Dim; x++ {
			var v uint32
			if px, py, ok := a.srcPixel(x, y); ok {
				if _, err := ctx.Mem.ReadBurst(a.inAddr(px, py), px4[:]); err != nil {
					return err
				}
				v = binary.LittleEndian.Uint32(px4[:])
			}
			binary.LittleEndian.PutUint32(rowOut[x*4:], v)
		}
		// Address generation + interpolation datapath: 1 pixel/cycle.
		ctx.Compute(uint64(a.Dim))
		off := y * a.Dim * 4
		p := off / outPart
		// Output rows are write-once and sequential: stream them.
		if err := ctx.WriteStream(afOutBase+uint64(p*outPart+off%outPart), rowOut); err != nil {
			return err
		}
	}
	return nil
}

// OutputRegions implements Workload.
func (a *Affine) OutputRegions() []string {
	out := make([]string, afOutSets)
	for i := range out {
		out[i] = fmt.Sprintf("out%d", i)
	}
	return out
}

// Check recomputes a sample of output rows on the host.
func (a *Affine) Check(inputs, outputs map[string][]byte) error {
	inPart := alignUp(a.imgBytes()/afInSets, afChunk)
	outPart := alignUp(a.imgBytes()/afOutSets, afChunk)
	inPix := func(px, py int) uint32 {
		off := (py*a.Dim + px) * 4
		img := inputs[fmt.Sprintf("in%d", off/inPart)]
		return binary.LittleEndian.Uint32(img[off%inPart:])
	}
	outPix := func(x, y int) uint32 {
		off := (y*a.Dim + x) * 4
		img := outputs[fmt.Sprintf("out%d", off/outPart)]
		return binary.LittleEndian.Uint32(img[off%outPart:])
	}
	step := a.Dim/16 + 1
	for y := 0; y < a.Dim; y += step {
		for x := 0; x < a.Dim; x += step {
			var want uint32
			if px, py, ok := a.srcPixel(x, y); ok {
				want = inPix(px, py)
			}
			if got := outPix(x, y); got != want {
				return fmt.Errorf("out[%d,%d] = %d, want %d", x, y, got, want)
			}
		}
	}
	return nil
}
