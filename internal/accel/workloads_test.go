package accel

import (
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"shef/internal/perf"
	"shef/internal/shield"
)

// --- vecadd ---

func TestVecAddCheckCatchesCorruption(t *testing.T) {
	w, _ := New("vecadd", map[string]string{"bytes": "8192"})
	v := w.(*VecAdd)
	rng := rand.New(rand.NewSource(1))
	inputs := v.Inputs(rng)
	outputs := map[string][]byte{}
	for p := 0; p < vecParts; p++ {
		a := inputs[keyN("a", p)]
		b := inputs[keyN("b", p)]
		o := make([]byte, len(a))
		for i := 0; i < len(a); i += 4 {
			binary.LittleEndian.PutUint32(o[i:],
				binary.LittleEndian.Uint32(a[i:])+binary.LittleEndian.Uint32(b[i:]))
		}
		outputs[keyN("o", p)] = o
	}
	if err := v.Check(inputs, outputs); err != nil {
		t.Fatalf("correct output rejected: %v", err)
	}
	outputs["o2"][100] ^= 1
	if err := v.Check(inputs, outputs); err == nil {
		t.Fatal("corrupted output accepted")
	}
}

func keyN(p string, i int) string { return p + string(rune('0'+i)) }

func TestVecAddSizeRounding(t *testing.T) {
	w, _ := New("vecadd", map[string]string{"bytes": "1000"})
	v := w.(*VecAdd)
	if v.Bytes%vecParts != 0 || v.part()%vecChunk != 0 {
		t.Fatalf("size %d not aligned", v.Bytes)
	}
}

// --- matmul ---

func TestMatMulCheckCatchesCorruption(t *testing.T) {
	w, _ := New("matmul", map[string]string{"n": "128"})
	bare, err := RunBare(w, perf.Default(), 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = bare
	// A wrong product must be rejected.
	m := w.(*MatMul)
	rng := rand.New(rand.NewSource(4))
	inputs := m.Inputs(rng)
	bad := map[string][]byte{"o": make([]byte, m.matBytes())} // zeros
	if err := m.Check(inputs, bad); err == nil {
		t.Fatal("all-zero product accepted")
	}
}

// --- digitrec ---

func TestKNNConsiderKeepsSorted(t *testing.T) {
	k := newKNN(3)
	for _, d := range []int{50, 10, 30, 5, 40} {
		k.consider(d, byte(d%10))
	}
	if !(k.dist[0] == 5 && k.dist[1] == 10 && k.dist[2] == 30) {
		t.Fatalf("top-k wrong: %v", k.dist)
	}
}

func TestKNNVoteMajority(t *testing.T) {
	k := newKNN(3)
	k.consider(1, 7)
	k.consider(2, 7)
	k.consider(3, 2)
	if got := k.vote(); got != 7 {
		t.Fatalf("vote = %d, want 7", got)
	}
}

// --- affine ---

func TestAffineSrcPixelBounds(t *testing.T) {
	w, _ := New("affine", map[string]string{"dim": "128"})
	a := w.(*Affine)
	for y := 0; y < a.Dim; y++ {
		for x := 0; x < a.Dim; x++ {
			if px, py, ok := a.srcPixel(x, y); ok {
				if px < 0 || px >= a.Dim || py < 0 || py >= a.Dim {
					t.Fatalf("srcPixel(%d,%d) out of bounds: %d,%d", x, y, px, py)
				}
			}
		}
	}
}

func TestAffineCenterFixedPoint(t *testing.T) {
	w, _ := New("affine", map[string]string{"dim": "128"})
	a := w.(*Affine)
	px, py, ok := a.srcPixel(a.Dim/2, a.Dim/2)
	if !ok || px != a.Dim/2 || py != a.Dim/2 {
		t.Fatalf("centre not fixed: %d,%d,%v", px, py, ok)
	}
}

// --- dnnweaver ---

func TestDNNWeaverDeterministic(t *testing.T) {
	p := map[string]string{"batch": "4"}
	w1, _ := New("dnnweaver", p)
	w2, _ := New("dnnweaver", p)
	r1, err := RunBare(w1, perf.Default(), 9)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunBare(w2, perf.Default(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.ComputeCycles != r2.ComputeCycles {
		t.Fatal("same seed produced different simulated time")
	}
}

func TestDNNWeaverShieldConfigShape(t *testing.T) {
	w, _ := New("dnnweaver", nil)
	d := w.(*DNNWeaver)
	cfg := d.ShieldConfig(V128x16)
	var weights, fmaps *shield.RegionConfig
	for i := range cfg.Regions {
		switch cfg.Regions[i].Name {
		case "weights":
			weights = &cfg.Regions[i]
		case "fmaps":
			fmaps = &cfg.Regions[i]
		}
	}
	if weights == nil || fmaps == nil {
		t.Fatal("missing regions")
	}
	// The paper's configuration: 4KB weight chunks, 64B fmap chunks,
	// counters only on the feature maps.
	if weights.ChunkSize != 4096 || fmaps.ChunkSize != 64 {
		t.Fatalf("chunk sizes %d/%d", weights.ChunkSize, fmaps.ChunkSize)
	}
	if weights.Freshness || !fmaps.Freshness {
		t.Fatal("freshness assignment inverted")
	}
	if weights.AESEngines != 4 || fmaps.AESEngines != 4 {
		t.Fatal("engine counts wrong")
	}
	// PMAC variant swaps only the weight set's MAC.
	pm := d.ShieldConfig(V128x16PMAC)
	if pm.Regions[0].MAC != shield.PMAC {
		t.Fatal("PMAC variant did not switch the weight set")
	}
	if pm.Regions[1].MAC != shield.HMAC {
		t.Fatal("PMAC variant should leave the fmap set on HMAC")
	}
}

// --- bitcoin ---

func TestMeetsDifficulty(t *testing.T) {
	var d [32]byte
	d[0] = 0x00
	d[1] = 0x7F // 9 leading zero bits
	if !meetsDifficulty(d, 9) {
		t.Fatal("9 leading zeros rejected at difficulty 9")
	}
	if meetsDifficulty(d, 10) {
		t.Fatal("9 leading zeros accepted at difficulty 10")
	}
	if !meetsDifficulty(d, 0) {
		t.Fatal("difficulty 0 must always pass")
	}
}

func TestBitcoinPostsNonceToRegister(t *testing.T) {
	w, _ := New("bitcoin", map[string]string{"difficulty": "8"})
	b := w.(*Bitcoin)
	rng := rand.New(rand.NewSource(6))
	b.Inputs(rng)
	regs := &bareRegs{regs: make([]uint64, 32)}
	ctx := &Ctx{Regs: regs}
	if err := b.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if regs.regs[btcRegStatus] != 1 {
		t.Fatal("status register not set")
	}
	// Verify the posted nonce really meets the difficulty.
	var full [80]byte
	copy(full[:76], b.Header[:])
	binary.LittleEndian.PutUint32(full[76:], uint32(regs.regs[btcRegNonce]))
	if !meetsDifficulty(doubleSHA(full[:]), b.Difficulty) {
		t.Fatal("posted nonce does not satisfy the difficulty")
	}
	if ctx.ComputeCycles() == 0 {
		t.Fatal("no mining compute accounted")
	}
}

// --- conv ---

func TestConvOutputPaddingZeroed(t *testing.T) {
	w, _ := New("conv", map[string]string{"cin": "8", "cout": "16"})
	sec, err := RunShielded(w, V128x16, perf.Default(), 5)
	if err != nil {
		t.Fatalf("conv export failed (padding not sealed?): %v", err)
	}
	if sec.Cycles == 0 {
		t.Fatal("no time accounted")
	}
}

// --- cross-cutting: region names in shield configs are unique ---

func TestWorkloadConfigsWellFormed(t *testing.T) {
	for _, name := range Designs() {
		w, err := New(name, smallParams(name))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []Variant{V128x16, V256x4, V128x16PMAC} {
			cfg := w.ShieldConfig(v)
			if err := cfg.Validate(); err != nil {
				t.Errorf("%s %s: invalid config: %v", name, v, err)
			}
			seen := map[string]bool{}
			for _, r := range cfg.Regions {
				if seen[r.Name] {
					t.Errorf("%s: duplicate region %q", name, r.Name)
				}
				seen[r.Name] = true
				if strings.Contains(r.Name, " ") {
					t.Errorf("%s: region name %q has spaces", name, r.Name)
				}
			}
		}
	}
}
