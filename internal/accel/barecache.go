package accel

import (
	"fmt"
	"sort"

	"shef/internal/axi"
	"shef/internal/perf"
	"shef/internal/shield"
)

// bareCachePort is the baseline accelerator's memory path: the same
// chunked line buffers the Shield configuration describes, with the same
// DRAM burst behaviour, but no cryptography, no tags, and no counters.
// Comparing the Shield against this port isolates the cost of security —
// the quantity Figures 5-6 report — rather than crediting the Shield for
// its caches.
type bareCachePort struct {
	inner   axi.MemoryPort
	params  perf.Params
	regions []*bareRegion
}

type bareRegion struct {
	cfg      shield.RegionConfig
	lines    map[int]*bufEntry
	capacity int
	tick     uint64

	// Sequential-stride detector mirroring the Shield's adaptive
	// prefetcher, so baselines and shielded runs see the same memory
	// microarchitecture and the overhead isolates the cryptography.
	seqNext   int
	seqRun    int
	seqStreak bool

	// share is the number of ports contending for this region's channel.
	share      int
	busyCycles uint64
	dramCycles uint64
}

type bufEntry struct {
	data  []byte
	dirty bool
	tick  uint64
}

func newBareCachePort(cfg shield.Config, inner axi.MemoryPort, params perf.Params) *bareCachePort {
	p := &bareCachePort{inner: inner, params: params}
	perChannel := make(map[int]int)
	for _, rc := range cfg.Regions {
		perChannel[rc.Channel]++
	}
	for _, rc := range cfg.Regions {
		capacity := rc.BufferBytes / rc.ChunkSize
		if capacity < 1 {
			capacity = 1
		}
		p.regions = append(p.regions, &bareRegion{
			cfg: rc, lines: make(map[int]*bufEntry), capacity: capacity,
			share: perChannel[rc.Channel], seqNext: -1,
		})
	}
	return p
}

func (p *bareCachePort) regionFor(addr uint64) (*bareRegion, error) {
	for _, r := range p.regions {
		if addr >= r.cfg.Base && addr < r.cfg.Base+r.cfg.Size {
			return r, nil
		}
	}
	return nil, fmt.Errorf("accel: bare access %#x outside configured regions", addr)
}

func (p *bareCachePort) load(r *bareRegion, chunk int, fill bool) (*bufEntry, error) {
	if ln, ok := r.lines[chunk]; ok {
		r.tick++
		ln.tick = r.tick
		return ln, nil
	}
	if fill {
		// The same sequential-stride detector the Shield runs, so a
		// chunk-at-a-time sequential baseline gets the same batched-fetch
		// microarchitecture and the comparison isolates the cryptography.
		if chunk == r.seqNext {
			r.seqRun++
		} else {
			r.seqRun, r.seqStreak = 1, false
		}
		r.seqNext = chunk + 1
		if r.cfg.SeqPrefetch && p.params.PrefetchMinMisses > 0 && r.capacity > 1 &&
			r.seqRun >= p.params.PrefetchMinMisses {
			if err := p.prefetchRun(r, chunk); err != nil {
				return nil, err
			}
			return r.lines[chunk], nil
		}
	}
	if err := p.evictFor(r, 1); err != nil {
		return nil, err
	}
	ln := &bufEntry{data: make([]byte, r.cfg.ChunkSize)}
	if fill {
		addr := r.cfg.Base + uint64(chunk*r.cfg.ChunkSize)
		if _, err := p.inner.ReadBurst(addr, ln.data); err != nil {
			return nil, err
		}
		r.busyCycles += p.params.DRAMCyclesShared(r.cfg.ChunkSize, r.share)
		r.dramCycles += p.params.DRAMCycles(r.cfg.ChunkSize)
	}
	r.tick++
	ln.tick = r.tick
	r.lines[chunk] = ln
	return ln, nil
}

// prefetchRun mirrors the Shield's adaptive prefetcher: the demand chunk
// plus a window of chunks ahead arrive in one batched transaction, charged
// with the overlapped stream accounting (no crypto stages here).
func (p *bareCachePort) prefetchRun(r *bareRegion, c0 int) error {
	cs := r.cfg.ChunkSize
	max := p.params.PrefetchWindowChunks
	if max < 1 || max > bareStreamWindow {
		max = bareStreamWindow
	}
	if max > r.capacity {
		max = r.capacity
	}
	n := 1
	for n < max {
		c := c0 + n
		if c >= r.cfg.Chunks() {
			break
		}
		if _, resident := r.lines[c]; resident {
			break
		}
		n++
	}
	if err := p.evictFor(r, n); err != nil {
		return err
	}
	buf := make([]byte, n*cs)
	addr := r.cfg.Base + uint64(c0*cs)
	if _, err := p.inner.ReadBurst(addr, buf); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		ln := &bufEntry{data: buf[i*cs : (i+1)*cs : (i+1)*cs]}
		r.tick++
		ln.tick = r.tick
		r.lines[c0+i] = ln
	}
	// The demand chunk is the access being served: most recent, exactly
	// as the Shield's engine set ranks it after its prefetch window.
	r.tick++
	r.lines[c0].tick = r.tick
	if n == 1 {
		r.busyCycles += p.params.DRAMCyclesShared(cs, r.share)
		r.dramCycles += p.params.DRAMCycles(cs)
	} else {
		extraBursts := uint64(axi.BurstsFor(n*cs) - 1)
		dramBusy := p.params.DRAMCyclesShared(n*cs, r.share) + extraBursts*p.params.DRAMRequestCycles
		copyStage := uint64(n*cs) / 64
		r.busyCycles += p.params.StreamWindowTime(dramBusy, copyStage)
		if !r.seqStreak {
			r.busyCycles += p.params.StreamFillDrain(dramBusy, copyStage)
		}
		r.seqStreak = true
		r.dramCycles += p.params.DRAMCycles(n*cs) + extraBursts*p.params.DRAMRequestCycles
	}
	r.seqNext = c0 + n
	return nil
}

// evictFor makes room for n incoming lines, write-combining dirty victims
// with resident dirty neighbours the way the Shield's engine set does.
func (p *bareCachePort) evictFor(r *bareRegion, n int) error {
	need := len(r.lines) + n - r.capacity
	if need <= 0 {
		return nil
	}
	victims := make([]int, 0, need)
	for len(victims) < need {
		victim, oldest := -1, uint64(1<<63)
		for idx, ln := range r.lines {
			if ln.tick < oldest {
				taken := false
				for _, v := range victims {
					if v == idx {
						taken = true
						break
					}
				}
				if !taken {
					victim, oldest = idx, ln.tick
				}
			}
		}
		if victim < 0 {
			break
		}
		victims = append(victims, victim)
	}
	dirtySet := make(map[int]bool)
	limit := p.batchChunks()
	extend := func(from, step int) {
		for c, span := from, 1; span < limit; c, span = c+step, span+1 {
			if nb, ok := r.lines[c]; !ok || !nb.dirty || dirtySet[c] {
				return
			}
			dirtySet[c] = true
		}
	}
	for _, v := range victims {
		if !r.lines[v].dirty {
			continue
		}
		dirtySet[v] = true
		extend(v-1, -1)
		extend(v+1, +1)
	}
	if len(dirtySet) > 0 {
		dirty := make([]int, 0, len(dirtySet))
		for c := range dirtySet {
			dirty = append(dirty, c)
		}
		sort.Ints(dirty)
		if err := p.writebackChunks(r, dirty, false); err != nil {
			return err
		}
	}
	for _, v := range victims {
		delete(r.lines, v)
	}
	return nil
}

// batchChunks mirrors the Shield's write-side window size.
func (p *bareCachePort) batchChunks() int {
	n := p.params.WritebackBatchChunks
	if n < 1 {
		n = 1
	}
	if n > bareStreamWindow {
		n = bareStreamWindow
	}
	return n
}

// writebackChunks stores the given resident dirty chunks (sorted
// ascending): one batched transaction per contiguous run, overlapped
// accounting for multi-chunk windows, the plain per-chunk charge for
// singletons — the Shield's batched write-back without the sealing.
func (p *bareCachePort) writebackChunks(r *bareRegion, chunks []int, fillDrain bool) error {
	cs := r.cfg.ChunkSize
	first := fillDrain
	return axi.ForEachRunCapped(chunks, p.batchChunks(), func(c0, n int) error {
		buf := make([]byte, 0, n*cs)
		for i := 0; i < n; i++ {
			buf = append(buf, r.lines[c0+i].data...)
		}
		addr := r.cfg.Base + uint64(c0*cs)
		if _, err := p.inner.WriteBurst(addr, buf); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			r.lines[c0+i].dirty = false
		}
		if n == 1 {
			r.busyCycles += p.params.DRAMCyclesShared(cs, r.share)
			r.dramCycles += p.params.DRAMCycles(cs)
			return nil
		}
		extraBursts := uint64(axi.BurstsFor(n*cs) - 1)
		dramBusy := p.params.DRAMCyclesShared(n*cs, r.share) + extraBursts*p.params.DRAMRequestCycles
		copyStage := uint64(n*cs) / 64
		r.busyCycles += p.params.StreamWindowTime(dramBusy, copyStage)
		if first {
			r.busyCycles += p.params.StreamFillDrain(dramBusy, copyStage)
			first = false
		}
		r.dramCycles += p.params.DRAMCycles(n*cs) + extraBursts*p.params.DRAMRequestCycles
		return nil
	})
}

// ReadBurst implements axi.MemoryPort.
func (p *bareCachePort) ReadBurst(addr uint64, buf []byte) (uint64, error) {
	r, err := p.regionFor(addr)
	if err != nil {
		return 0, err
	}
	off := addr - r.cfg.Base
	for done := 0; done < len(buf); {
		chunk := int((off + uint64(done)) / uint64(r.cfg.ChunkSize))
		inOff := int((off + uint64(done)) % uint64(r.cfg.ChunkSize))
		ln, err := p.load(r, chunk, true)
		if err != nil {
			return 0, err
		}
		n := copy(buf[done:], ln.data[inOff:])
		r.busyCycles += 1 + uint64(n)/64
		done += n
	}
	return 0, nil
}

// WriteBurst implements axi.MemoryPort.
func (p *bareCachePort) WriteBurst(addr uint64, data []byte) (uint64, error) {
	r, err := p.regionFor(addr)
	if err != nil {
		return 0, err
	}
	off := addr - r.cfg.Base
	for done := 0; done < len(data); {
		chunk := int((off + uint64(done)) / uint64(r.cfg.ChunkSize))
		inOff := int((off + uint64(done)) % uint64(r.cfg.ChunkSize))
		n := r.cfg.ChunkSize - inOff
		if n > len(data)-done {
			n = len(data) - done
		}
		full := inOff == 0 && n == r.cfg.ChunkSize
		ln, err := p.load(r, chunk, !full)
		if err != nil {
			return 0, err
		}
		copy(ln.data[inOff:], data[done:done+n])
		ln.dirty = true
		r.busyCycles += 1 + uint64(n)/64
		done += n
	}
	return 0, nil
}

// bareStreamWindow mirrors the Shield's pipeline window so baseline
// streamed transfers batch DRAM requests at the same granularity.
const bareStreamWindow = 16

// ReadStream implements axi.Streamer for the baseline port: full chunks
// are fetched in batched transactions (one request per contiguous run)
// with the on-chip copy overlapped, no cryptography. This keeps the
// bare-vs-shielded comparison honest when workloads stream: both sides
// get the burst batching, and the difference isolates the Shield.
func (p *bareCachePort) ReadStream(addr uint64, buf []byte) (uint64, error) {
	r, err := p.regionFor(addr)
	if err != nil {
		return 0, err
	}
	return axi.StreamWindows(r.cfg.Base, addr, len(buf), r.cfg.ChunkSize, bareStreamWindow,
		func(a uint64, lo, hi int) (uint64, error) { return p.ReadBurst(a, buf[lo:hi]) },
		func(a uint64, lo, hi int, first bool) (uint64, error) {
			return 0, p.readWindow(r, a, buf[lo:hi], first)
		})
}

func (p *bareCachePort) readWindow(r *bareRegion, addr uint64, buf []byte, first bool) error {
	cs := r.cfg.ChunkSize
	c0 := int((addr - r.cfg.Base) / uint64(cs))
	n := len(buf) / cs
	var fetch []int
	for i := 0; i < n; i++ {
		if ln, ok := r.lines[c0+i]; ok {
			r.tick++
			ln.tick = r.tick
			copy(buf[i*cs:(i+1)*cs], ln.data)
		} else {
			fetch = append(fetch, i)
		}
	}
	var dramBusy, dramBus uint64
	err := axi.ForEachRun(fetch, func(i0, runChunks int) error {
		runAddr := r.cfg.Base + uint64((c0+i0)*cs)
		if _, err := p.inner.ReadBurst(runAddr, buf[i0*cs:(i0+runChunks)*cs]); err != nil {
			return err
		}
		extraBursts := uint64(axi.BurstsFor(runChunks*cs) - 1)
		dramBusy += p.params.DRAMCyclesShared(runChunks*cs, r.share) + extraBursts*p.params.DRAMRequestCycles
		dramBus += p.params.DRAMCycles(runChunks*cs) + extraBursts*p.params.DRAMRequestCycles
		return nil
	})
	if err != nil {
		return err
	}
	copyStage := uint64(len(buf)) / 64
	r.busyCycles += p.params.StreamWindowTime(dramBusy, copyStage)
	if first {
		r.busyCycles += p.params.StreamFillDrain(dramBusy, copyStage)
	}
	r.dramCycles += dramBus
	return nil
}

// WriteStream implements axi.Streamer: full chunks write through in one
// batched transaction per window, superseding any resident lines.
func (p *bareCachePort) WriteStream(addr uint64, data []byte) (uint64, error) {
	r, err := p.regionFor(addr)
	if err != nil {
		return 0, err
	}
	return axi.StreamWindows(r.cfg.Base, addr, len(data), r.cfg.ChunkSize, bareStreamWindow,
		func(a uint64, lo, hi int) (uint64, error) { return p.WriteBurst(a, data[lo:hi]) },
		func(a uint64, lo, hi int, first bool) (uint64, error) {
			return 0, p.writeWindow(r, a, data[lo:hi], first)
		})
}

func (p *bareCachePort) writeWindow(r *bareRegion, addr uint64, data []byte, first bool) error {
	cs := r.cfg.ChunkSize
	c0 := int((addr - r.cfg.Base) / uint64(cs))
	n := len(data) / cs
	if _, err := p.inner.WriteBurst(addr, data); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		delete(r.lines, c0+i)
	}
	extraBursts := uint64(axi.BurstsFor(len(data)) - 1)
	dramBusy := p.params.DRAMCyclesShared(len(data), r.share) + extraBursts*p.params.DRAMRequestCycles
	copyStage := uint64(len(data)) / 64
	r.busyCycles += p.params.StreamWindowTime(dramBusy, copyStage)
	if first {
		r.busyCycles += p.params.StreamFillDrain(dramBusy, copyStage)
	}
	r.dramCycles += p.params.DRAMCycles(len(data)) + extraBursts*p.params.DRAMRequestCycles
	return nil
}

// MemCycles composes the baseline memory time the same way the Shield's
// Report does: ports run in parallel, bounded by per-channel bus occupancy
// (dram cost at full channel bandwidth, not the per-port share).
func (p *bareCachePort) MemCycles() uint64 {
	var maxBusy uint64
	perChannel := make(map[int]uint64)
	for _, r := range p.regions {
		if r.busyCycles > maxBusy {
			maxBusy = r.busyCycles
		}
		perChannel[r.cfg.Channel] += r.dramCycles
	}
	best := maxBusy
	for _, dram := range perChannel {
		if dram > best {
			best = dram
		}
	}
	return best
}

// Flush writes back all dirty lines in ascending chunk order, contiguous
// runs batched — the deterministic pipelined flush the Shield performs,
// minus the sealing.
func (p *bareCachePort) Flush() error {
	for _, r := range p.regions {
		dirty := make([]int, 0, len(r.lines))
		for idx, ln := range r.lines {
			if ln.dirty {
				dirty = append(dirty, idx)
			}
		}
		sort.Ints(dirty)
		if err := p.writebackChunks(r, dirty, true); err != nil {
			return err
		}
	}
	return nil
}
