package accel

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"

	"shef/internal/shield"
)

// Conv is the Figure 6 convolution workload: one convolutional layer from
// a Xilinx reference implementation with a 27×27×96 input, 5×5 filters,
// and a 27×27×256 output over 32-bit values (§6.2.4). It achieves high
// parallelism by streaming batches of feature maps and filters; the paper
// configures 8 engine sets for inputs and weights and 4 for outputs, with
// 512-byte chunks, observing 1.20x-1.35x overheads.
type Conv struct {
	// H, W, Cin, Cout, K are the layer dimensions (paper defaults).
	H, W, Cin, Cout, K int
	// Batch is the number of images streamed per invocation.
	Batch int
	// Lanes is the MAC-array width (MACs per cycle).
	Lanes int
}

const (
	convChunk   = 512
	convInBase  = 0x0000_0000
	convWBase   = 0x2000_0000
	convOutBase = 0x4000_0000
	convInSets  = 4 // input feature-map engine sets
	convWSets   = 4 // weight engine sets (inputs+weights = 8, §6.2.4)
	convOutSets = 4
)

// NewConv builds the workload. Params: "h", "w", "cin", "cout", "k",
// "batch", "lanes". Defaults are the paper's layer at batch 2 with a
// 4096-lane MAC array.
func NewConv(params map[string]string) (Workload, error) {
	// Defaults are a scaled-down layer for fast functional runs; the
	// benchmark harness passes the paper's 27×27×96 → 27×27×256 dims.
	c := &Conv{H: 27, W: 27, Cin: 16, Cout: 64, K: 5, Batch: 1, Lanes: 4096}
	for key, dst := range map[string]*int{
		"h": &c.H, "w": &c.W, "cin": &c.Cin, "cout": &c.Cout,
		"k": &c.K, "batch": &c.Batch, "lanes": &c.Lanes,
	} {
		if s, ok := params[key]; ok {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("accel: conv %s=%q invalid", key, s)
			}
			*dst = n
		}
	}
	return c, nil
}

func init() { Register("conv", NewConv) }

// Name implements Workload.
func (c *Conv) Name() string { return "conv" }

func (c *Conv) inBytes() int  { return c.Batch * c.H * c.W * c.Cin * 4 }
func (c *Conv) wBytes() int   { return c.K * c.K * c.Cin * c.Cout * 4 }
func (c *Conv) outBytes() int { return c.Batch * c.H * c.W * c.Cout * 4 }

func alignUp(n, a int) int { return (n + a - 1) / a * a }

// ShieldConfig splits inputs, weights, and outputs across their engine
// sets; streaming access, no replay counters (read-once / write-once,
// §6.2.4: "we can save on-chip memory by disabling integrity counters").
func (c *Conv) ShieldConfig(variant Variant) shield.Config {
	var regions []shield.RegionConfig
	split := func(prefix string, base uint64, total, parts, buf int) {
		part := alignUp(alignUp(total, parts)/parts, convChunk)
		for i := 0; i < parts; i++ {
			regions = append(regions, shield.RegionConfig{
				Name:        fmt.Sprintf("%s%d", prefix, i),
				Base:        base + uint64(i*part),
				Size:        uint64(part),
				ChunkSize:   convChunk,
				AESEngines:  1,
				SBox:        variant.SBox,
				KeySize:     variant.KeySize,
				MAC:         variant.MAC(),
				BufferBytes: buf,
			})
		}
	}
	// 128KB read buffer across input+weight sets, 64KB across output sets
	// (§6.2.4).
	split("in", convInBase, c.inBytes(), convInSets, 128<<10/(convInSets+convWSets))
	split("w", convWBase, c.wBytes(), convWSets, 128<<10/(convInSets+convWSets))
	split("out", convOutBase, c.outBytes(), convOutSets, 64<<10/convOutSets)
	return shield.Config{Regions: regions, Registers: 8}
}

// Inputs fills the feature-map and weight partitions.
func (c *Conv) Inputs(rng *rand.Rand) map[string][]byte {
	out := make(map[string][]byte)
	fill := func(prefix string, total, parts int) {
		part := alignUp(alignUp(total, parts)/parts, convChunk)
		for i := 0; i < parts; i++ {
			img := make([]byte, part)
			rng.Read(img)
			out[fmt.Sprintf("%s%d", prefix, i)] = img
		}
	}
	fill("in", c.inBytes(), convInSets)
	fill("w", c.wBytes(), convWSets)
	return out
}

// partSize is the per-partition byte size after chunk alignment.
func (c *Conv) partSize(total, parts int) int {
	return alignUp(alignUp(total, parts)/parts, convChunk)
}

// Run streams the convolution: for each batch image and output channel
// block, read input tiles and weights through the port's pipelined
// streaming path, MAC, and stream the output rows back. Values use
// wraparound int32 arithmetic (hardware-exact).
func (c *Conv) Run(ctx *Ctx) error {
	pad := c.K / 2
	// Load weights once per image block (streamed, buffered by the Shield).
	wTotal := c.wBytes()
	weights := make([]byte, wTotal)
	wPart := c.partSize(wTotal, convWSets)
	for p := 0; p < convWSets; p++ {
		lo := p * wPart
		n := wPart
		if lo+n > wTotal {
			n = wTotal - lo
		}
		if n <= 0 {
			break
		}
		if err := ctx.ReadStream(convWBase+uint64(p*wPart), weights[lo:lo+n]); err != nil {
			return err
		}
	}
	inTotal := c.inBytes()
	inPart := c.partSize(inTotal, convInSets)
	inRow := make([]byte, c.W*c.Cin*4)
	outRow := make([]byte, c.W*c.Cout*4)
	// Sliding window of input rows for the current image.
	rows := make([][]byte, c.H)

	for b := 0; b < c.Batch; b++ {
		// Stream the image's rows in.
		for y := 0; y < c.H; y++ {
			off := ((b*c.H + y) * c.W * c.Cin) * 4
			p := off / inPart
			inOff := off % inPart
			// A row may straddle partitions; split the read.
			row := make([]byte, len(inRow))
			done := 0
			for done < len(row) {
				n := inPart - inOff
				if n > len(row)-done {
					n = len(row) - done
				}
				if err := ctx.ReadStream(convInBase+uint64(p*inPart+inOff), row[done:done+n]); err != nil {
					return err
				}
				done += n
				p++
				inOff = 0
			}
			rows[y] = row
		}
		// Compute and stream each output row. The accumulator array makes
		// the innermost loop run contiguously over the weight layout.
		acc := make([]uint32, c.Cout)
		for y := 0; y < c.H; y++ {
			for x := 0; x < c.W; x++ {
				for i := range acc {
					acc[i] = 0
				}
				for kh := 0; kh < c.K; kh++ {
					yy := y + kh - pad
					if yy < 0 || yy >= c.H {
						continue
					}
					row := rows[yy]
					for kw := 0; kw < c.K; kw++ {
						xx := x + kw - pad
						if xx < 0 || xx >= c.W {
							continue
						}
						for ci := 0; ci < c.Cin; ci++ {
							a := binary.LittleEndian.Uint32(row[(xx*c.Cin+ci)*4:])
							if a == 0 {
								continue
							}
							wrow := weights[(((kh*c.K+kw)*c.Cin+ci)*c.Cout)*4:]
							for co := 0; co < c.Cout; co++ {
								acc[co] += a * binary.LittleEndian.Uint32(wrow[co*4:])
							}
						}
					}
				}
				for co := 0; co < c.Cout; co++ {
					binary.LittleEndian.PutUint32(outRow[(x*c.Cout+co)*4:], acc[co])
				}
			}
			// MACs for this row: W * Cout * K² * Cin.
			ctx.Compute(uint64(c.W*c.Cout*c.K*c.K*c.Cin) / uint64(c.Lanes))
			if err := c.writeOutRow(ctx, b, y, outRow); err != nil {
				return err
			}
		}
	}
	// Zero the chunk-alignment padding at the end of the output space so
	// every output chunk carries valid ciphertext for the export path.
	total := c.outBytes()
	padded := c.partSize(total, convOutSets) * convOutSets
	if padded > total {
		pad := make([]byte, padded-total)
		p := total / c.partSize(total, convOutSets)
		inOff := total % c.partSize(total, convOutSets)
		if err := ctx.WriteStream(convOutBase+uint64(p*c.partSize(total, convOutSets)+inOff), pad); err != nil {
			return err
		}
	}
	return nil
}

func (c *Conv) writeOutRow(ctx *Ctx, b, y int, row []byte) error {
	outTotal := c.outBytes()
	outPart := c.partSize(outTotal, convOutSets)
	off := ((b*c.H + y) * c.W * c.Cout) * 4
	p := off / outPart
	inOff := off % outPart
	done := 0
	for done < len(row) {
		n := outPart - inOff
		if n > len(row)-done {
			n = len(row) - done
		}
		if err := ctx.WriteStream(convOutBase+uint64(p*outPart+inOff), row[done:done+n]); err != nil {
			return err
		}
		done += n
		p++
		inOff = 0
	}
	return nil
}

// OutputRegions implements Workload.
func (c *Conv) OutputRegions() []string {
	out := make([]string, convOutSets)
	for i := range out {
		out[i] = fmt.Sprintf("out%d", i)
	}
	return out
}

// Check recomputes a sample of output pixels on the host.
func (c *Conv) Check(inputs, outputs map[string][]byte) error {
	// Reassemble flat tensors from partitions.
	join := func(prefix string, parts int) []byte {
		var out []byte
		for i := 0; i < parts; i++ {
			out = append(out, inputs[fmt.Sprintf("%s%d", prefix, i)]...)
		}
		return out
	}
	in := join("in", convInSets)
	w := join("w", convWSets)
	var outFlat []byte
	for i := 0; i < convOutSets; i++ {
		outFlat = append(outFlat, outputs[fmt.Sprintf("out%d", i)]...)
	}
	inAt := func(b, y, x, ci int) uint32 {
		if y < 0 || y >= c.H || x < 0 || x >= c.W {
			return 0
		}
		idx := ((b*c.H+y)*c.W+x)*c.Cin + ci
		return binary.LittleEndian.Uint32(in[idx*4:])
	}
	wAt := func(kh, kw, ci, co int) uint32 {
		idx := ((kh*c.K+kw)*c.Cin+ci)*c.Cout + co
		return binary.LittleEndian.Uint32(w[idx*4:])
	}
	pad := c.K / 2
	// Deterministic sample of output positions.
	for _, pos := range [][3]int{{0, 0, 0}, {c.H / 2, c.W / 2, c.Cout / 2}, {c.H - 1, c.W - 1, c.Cout - 1}} {
		y, x, co := pos[0], pos[1], pos[2]
		for b := 0; b < c.Batch; b++ {
			var want uint32
			for kh := 0; kh < c.K; kh++ {
				for kw := 0; kw < c.K; kw++ {
					for ci := 0; ci < c.Cin; ci++ {
						want += inAt(b, y+kh-pad, x+kw-pad, ci) * wAt(kh, kw, ci, co)
					}
				}
			}
			idx := ((b*c.H+y)*c.W+x)*c.Cout + co
			if got := binary.LittleEndian.Uint32(outFlat[idx*4:]); got != want {
				return fmt.Errorf("out[%d,%d,%d,%d] = %d, want %d", b, y, x, co, got, want)
			}
		}
	}
	return nil
}
