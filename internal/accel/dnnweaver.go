package accel

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"

	"shef/internal/shield"
)

// DNNWeaver is the Figure 6 DNN-inference workload: DNNWeaver running a
// LeNet-class network (§6.2.4). Its two memory behaviours get separate
// engine sets:
//
//   - Weights: streamed once per batch in large reads. Cmem = 4 KB, 4 AES
//     engines + 1 HMAC (or 4 PMAC), 128 KB buffer, no counters. The long
//     serial HMAC over 4 KB chunks is the reported bottleneck (3.20x-3.83x),
//     which swapping in PMAC reduces to 2.31x.
//   - Feature maps: small random reads and writes. Cmem = 64 B, 4 AES + 1
//     HMAC, 64 KB buffer, with on-chip integrity counters (~16 KB for the
//     ~1 MB region) because activations are rewritten.
type DNNWeaver struct {
	// Dims are the fully-connected layer widths (LeNet-class MLP).
	Dims []int
	// Batch is the number of inputs per invocation.
	Batch int
	// Lanes is the MAC-array width.
	Lanes int
}

const (
	dwWChunk  = 4096
	dwFChunk  = 64
	dwWBase   = 0x0000_0000
	dwFBase   = 0x1000_0000
	dwOutBase = 0x2000_0000
)

// NewDNNWeaver builds the workload; params: "batch", "lanes".
func NewDNNWeaver(params map[string]string) (Workload, error) {
	d := &DNNWeaver{Dims: []int{784, 512, 128, 10}, Batch: 48, Lanes: 80}
	for key, dst := range map[string]*int{"batch": &d.Batch, "lanes": &d.Lanes} {
		if s, ok := params[key]; ok {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("accel: dnnweaver %s=%q invalid", key, s)
			}
			*dst = n
		}
	}
	return d, nil
}

func init() { Register("dnnweaver", NewDNNWeaver) }

// Name implements Workload.
func (d *DNNWeaver) Name() string { return "dnnweaver" }

func (d *DNNWeaver) weightCount() int {
	n := 0
	for l := 0; l+1 < len(d.Dims); l++ {
		n += d.Dims[l] * d.Dims[l+1]
	}
	return n
}

func (d *DNNWeaver) weightBytes() int { return alignUp(d.weightCount()*4, dwWChunk) }

// perImageActs is the activation footprint of one image in the feature-map
// region: every layer's activations, 4 bytes each, 64-byte aligned.
func (d *DNNWeaver) perImageActs() int {
	n := 0
	for _, w := range d.Dims {
		n += alignUp(w*4, dwFChunk)
	}
	return n
}

func (d *DNNWeaver) fmapBytes() int { return alignUp(d.Batch*d.perImageActs(), dwFChunk) }
func (d *DNNWeaver) outBytes() int {
	return alignUp(d.Batch*alignUp(d.Dims[len(d.Dims)-1]*4, dwFChunk), dwFChunk)
}

// ShieldConfig builds the two-set configuration described above plus a
// small streaming output region.
func (d *DNNWeaver) ShieldConfig(variant Variant) shield.Config {
	weightMAC := shield.HMAC
	if variant.PMAC {
		weightMAC = shield.PMAC
	}
	return shield.Config{
		Regions: []shield.RegionConfig{
			{
				Name: "weights", Base: dwWBase, Size: uint64(d.weightBytes()),
				ChunkSize: dwWChunk, AESEngines: 4, SBox: variant.SBox,
				KeySize: variant.KeySize, MAC: weightMAC,
				BufferBytes: 128 << 10,
			},
			{
				Name: "fmaps", Base: dwFBase, Size: uint64(d.fmapBytes()),
				ChunkSize: dwFChunk, AESEngines: 4, SBox: variant.SBox,
				KeySize: variant.KeySize, MAC: shield.HMAC,
				BufferBytes: 64 << 10, Freshness: true,
			},
			{
				Name: "out", Base: dwOutBase, Size: uint64(d.outBytes()),
				ChunkSize: dwFChunk, AESEngines: 1, SBox: variant.SBox,
				KeySize: variant.KeySize, MAC: shield.HMAC,
				BufferBytes: 4 << 10,
			},
		},
		Registers: 8,
	}
}

// Inputs provisions the weights and the batch's input activations (layer
// 0 of each image's activation strip).
func (d *DNNWeaver) Inputs(rng *rand.Rand) map[string][]byte {
	w := make([]byte, d.weightBytes())
	rng.Read(w)
	f := make([]byte, d.fmapBytes())
	per := d.perImageActs()
	in0 := alignUp(d.Dims[0]*4, dwFChunk)
	for b := 0; b < d.Batch; b++ {
		rng.Read(f[b*per : b*per+in0])
	}
	return map[string][]byte{"weights": w, "fmaps": f}
}

// actBase returns the feature-map address of image b's layer-l activations.
func (d *DNNWeaver) actBase(b, l int) uint64 {
	off := b * d.perImageActs()
	for i := 0; i < l; i++ {
		off += alignUp(d.Dims[i]*4, dwFChunk)
	}
	return dwFBase + uint64(off)
}

// Run performs batched inference: weights stream through their engine set
// per layer; activations are read and written in the feature-map region.
func (d *DNNWeaver) Run(ctx *Ctx) error {
	// Stream all weights once through the pipelined burst engine (the
	// 4 KB-chunk engine set fetches, decrypts, and verifies in windows).
	weights := make([]byte, d.weightBytes())
	if err := ctx.ReadStream(dwWBase, weights); err != nil {
		return err
	}
	wOff := make([]int, len(d.Dims))
	{
		off := 0
		for l := 0; l+1 < len(d.Dims); l++ {
			wOff[l] = off
			off += d.Dims[l] * d.Dims[l+1] * 4
		}
	}
	outAll := make([]byte, d.outBytes())
	outPer := alignUp(d.Dims[len(d.Dims)-1]*4, dwFChunk)
	for b := 0; b < d.Batch; b++ {
		for l := 0; l+1 < len(d.Dims); l++ {
			nin, nout := d.Dims[l], d.Dims[l+1]
			in := make([]byte, nin*4)
			// Activations stay on the chunked path: they are the "small
			// random reads and writes" case, served by the 64 KB buffer,
			// and write-through streaming would defeat that cache.
			if _, err := ctx.Mem.ReadBurst(d.actBase(b, l), in); err != nil {
				return err
			}
			out := make([]byte, nout*4)
			for j := 0; j < nout; j++ {
				var acc uint32
				wrow := weights[wOff[l]+j*nin*4:]
				for i := 0; i < nin; i++ {
					acc += binary.LittleEndian.Uint32(in[i*4:]) * binary.LittleEndian.Uint32(wrow[i*4:])
				}
				// ReLU-like nonlinearity on the integer domain.
				if acc&0x8000_0000 != 0 {
					acc = 0
				}
				binary.LittleEndian.PutUint32(out[j*4:], acc)
			}
			ctx.Compute(uint64(nin*nout) / uint64(d.Lanes))
			if _, err := ctx.Mem.WriteBurst(d.actBase(b, l+1), out); err != nil {
				return err
			}
		}
		// Copy the final layer to the output region.
		last := make([]byte, d.Dims[len(d.Dims)-1]*4)
		if _, err := ctx.Mem.ReadBurst(d.actBase(b, len(d.Dims)-1), last); err != nil {
			return err
		}
		copy(outAll[b*outPer:], last)
	}
	if err := ctx.WriteStream(dwOutBase, outAll); err != nil {
		return err
	}
	return nil
}

// OutputRegions implements Workload.
func (d *DNNWeaver) OutputRegions() []string { return []string{"out"} }

// Check re-runs inference for a sample of images on the host.
func (d *DNNWeaver) Check(inputs, outputs map[string][]byte) error {
	weights := inputs["weights"]
	fmaps := inputs["fmaps"]
	out := outputs["out"]
	per := d.perImageActs()
	outPer := alignUp(d.Dims[len(d.Dims)-1]*4, dwFChunk)
	wOff := 0
	wOffs := make([]int, len(d.Dims))
	for l := 0; l+1 < len(d.Dims); l++ {
		wOffs[l] = wOff
		wOff += d.Dims[l] * d.Dims[l+1] * 4
	}
	step := d.Batch/6 + 1
	for b := 0; b < d.Batch; b += step {
		act := make([]uint32, d.Dims[0])
		for i := range act {
			act[i] = binary.LittleEndian.Uint32(fmaps[b*per+i*4:])
		}
		for l := 0; l+1 < len(d.Dims); l++ {
			nin, nout := d.Dims[l], d.Dims[l+1]
			next := make([]uint32, nout)
			for j := 0; j < nout; j++ {
				var acc uint32
				for i := 0; i < nin; i++ {
					acc += act[i] * binary.LittleEndian.Uint32(weights[wOffs[l]+(j*nin+i)*4:])
				}
				if acc&0x8000_0000 != 0 {
					acc = 0
				}
				next[j] = acc
			}
			act = next
		}
		for j, v := range act {
			if got := binary.LittleEndian.Uint32(out[b*outPer+j*4:]); got != v {
				return fmt.Errorf("image %d logit %d = %d, want %d", b, j, got, v)
			}
		}
	}
	return nil
}
