package accel

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"math/rand"
	"strconv"

	"shef/internal/shield"
)

// DigitRec is the Rosetta digit-recognition workload (§6.2.4): K-nearest-
// neighbour classification of 49-pixel binary digits against a training
// set. It streams inputs without batching; the paper uses two engine sets
// for inputs (24 KB of buffer) and one for outputs (12 KB), 512-byte
// chunks, and reports 1.85x-3.15x overheads.
type DigitRec struct {
	// Train is the number of training vectors (18000 in Rosetta).
	Train int
	// Tests is the number of digits classified per run.
	Tests int
	// K is the number of neighbours voted.
	K int
	// Units is the number of parallel comparator units: each pass over
	// the training stream classifies Units digits at once (the Rosetta
	// kernel's unrolled compare lanes).
	Units int
}

const (
	drChunk     = 512
	drTrainBase = 0x0000_0000
	drTestBase  = 0x1000_0000
	drOutBase   = 0x2000_0000
	drVecBytes  = 8 // 49-bit digit in a 64-bit word
)

// NewDigitRec builds the workload; params: "train", "tests", "k".
func NewDigitRec(params map[string]string) (Workload, error) {
	d := &DigitRec{Train: 4096, Tests: 128, K: 3, Units: 8}
	for key, dst := range map[string]*int{"train": &d.Train, "tests": &d.Tests, "k": &d.K, "units": &d.Units} {
		if s, ok := params[key]; ok {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("accel: digitrec %s=%q invalid", key, s)
			}
			*dst = n
		}
	}
	// Chunk-align the training set split.
	d.Train = alignUp(d.Train, 2*drChunk/drVecBytes)
	d.Tests = alignUp(d.Tests, drChunk/drVecBytes)
	return d, nil
}

func init() { Register("digitrec", NewDigitRec) }

// Name implements Workload.
func (d *DigitRec) Name() string { return "digitrec" }

func (d *DigitRec) trainBytes() int { return d.Train * drVecBytes }
func (d *DigitRec) testBytes() int  { return d.Tests * drVecBytes }
func (d *DigitRec) outBytes() int   { return alignUp(d.Tests, drChunk) } // one label byte per test

// ShieldConfig: two input engine sets (training set split in half), one
// output set, streaming, no counters. The kernel walks the training set
// chunk by chunk (it never issues bulk bursts), so the input sets arm the
// sequential prefetcher: the Shield detects the ascending miss pattern and
// services it through pipelined stream windows transparently.
func (d *DigitRec) ShieldConfig(variant Variant) shield.Config {
	half := uint64(d.trainBytes() / 2)
	mk := func(name string, base, size uint64, buf int, prefetch bool) shield.RegionConfig {
		return shield.RegionConfig{
			Name: name, Base: base, Size: size, ChunkSize: drChunk,
			AESEngines: 1, SBox: variant.SBox, KeySize: variant.KeySize,
			MAC: variant.MAC(), BufferBytes: buf,
			SeqPrefetch: prefetch,
		}
	}
	return shield.Config{
		Regions: []shield.RegionConfig{
			// 24 KB input buffer split across the two sets; 12 KB output.
			// Only the read-side regions prefetch: the output set is
			// write-once, where fetching ahead would be pure waste.
			mk("train0", drTrainBase, half, 12<<10, true),
			mk("train1", drTrainBase+half, half, 12<<10, true),
			mk("test", drTestBase, uint64(alignUp(d.testBytes(), drChunk)), 2*drChunk, true),
			mk("out", drOutBase, uint64(d.outBytes()), 12<<10, false),
		},
		Registers: 8,
	}
}

// Inputs generates training digits (with the label packed in the top
// bits) and test digits.
func (d *DigitRec) Inputs(rng *rand.Rand) map[string][]byte {
	mkvec := func() uint64 {
		v := rng.Uint64() & (1<<49 - 1)
		label := uint64(rng.Intn(10))
		return v | label<<60
	}
	train := make([]byte, d.trainBytes())
	for i := 0; i < d.Train; i++ {
		binary.LittleEndian.PutUint64(train[i*8:], mkvec())
	}
	test := make([]byte, alignUp(d.testBytes(), drChunk))
	for i := 0; i < d.Tests; i++ {
		binary.LittleEndian.PutUint64(test[i*8:], mkvec()&(1<<49-1))
	}
	half := len(train) / 2
	return map[string][]byte{
		"train0": train[:half],
		"train1": train[half:],
		"test":   test,
	}
}

// classify runs KNN for one test vector against a stream of training
// words.
type knnState struct {
	dist  []int
	label []byte
}

func newKNN(k int) *knnState {
	s := &knnState{dist: make([]int, k), label: make([]byte, k)}
	for i := range s.dist {
		s.dist[i] = 1 << 30
	}
	return s
}

func (s *knnState) consider(dist int, label byte) {
	// Insertion into the small sorted top-k array.
	for i := range s.dist {
		if dist < s.dist[i] {
			copy(s.dist[i+1:], s.dist[i:len(s.dist)-1])
			copy(s.label[i+1:], s.label[i:len(s.label)-1])
			s.dist[i] = dist
			s.label[i] = label
			return
		}
	}
}

func (s *knnState) vote() byte {
	var counts [10]int
	for _, l := range s.label {
		counts[l]++
	}
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return byte(best)
}

// Run streams the training set once per test digit (the Rosetta kernel's
// access pattern) and writes one label per digit.
func (d *DigitRec) Run(ctx *Ctx) error {
	testBuf := make([]byte, alignUp(d.testBytes(), drChunk))
	if _, err := ctx.Mem.ReadBurst(drTestBase, testBuf); err != nil {
		return err
	}
	out := make([]byte, d.outBytes())
	chunk := make([]byte, drChunk)
	for t0 := 0; t0 < d.Tests; t0 += d.Units {
		lanes := d.Units
		if t0+lanes > d.Tests {
			lanes = d.Tests - t0
		}
		tvs := make([]uint64, lanes)
		knns := make([]*knnState, lanes)
		for l := 0; l < lanes; l++ {
			tvs[l] = binary.LittleEndian.Uint64(testBuf[(t0+l)*8:])
			knns[l] = newKNN(d.K)
		}
		// One pass over the training stream serves all comparator lanes.
		for off := 0; off < d.trainBytes(); off += drChunk {
			if _, err := ctx.Mem.ReadBurst(uint64(drTrainBase+off), chunk); err != nil {
				return err
			}
			for i := 0; i < drChunk; i += 8 {
				w := binary.LittleEndian.Uint64(chunk[i:])
				for l := 0; l < lanes; l++ {
					dist := bits.OnesCount64((w ^ tvs[l]) & (1<<49 - 1))
					knns[l].consider(dist, byte(w>>60))
				}
			}
			// One training word per cycle through the parallel lanes.
			ctx.Compute(drChunk / 8)
		}
		for l := 0; l < lanes; l++ {
			out[t0+l] = knns[l].vote()
		}
	}
	if _, err := ctx.Mem.WriteBurst(drOutBase, out); err != nil {
		return err
	}
	return nil
}

// OutputRegions implements Workload.
func (d *DigitRec) OutputRegions() []string { return []string{"out"} }

// Check reruns KNN on the host for a sample of test digits.
func (d *DigitRec) Check(inputs, outputs map[string][]byte) error {
	train := append(append([]byte{}, inputs["train0"]...), inputs["train1"]...)
	test := inputs["test"]
	out := outputs["out"]
	step := d.Tests/16 + 1
	for t := 0; t < d.Tests; t += step {
		tv := binary.LittleEndian.Uint64(test[t*8:])
		knn := newKNN(d.K)
		for i := 0; i < d.Train; i++ {
			w := binary.LittleEndian.Uint64(train[i*8:])
			dist := bits.OnesCount64((w ^ tv) & (1<<49 - 1))
			knn.consider(dist, byte(w>>60))
		}
		if want := knn.vote(); out[t] != want {
			return fmt.Errorf("test %d: label %d, want %d", t, out[t], want)
		}
	}
	return nil
}
