package accel

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"

	"shef/internal/shield"
)

// VecAdd is the Figure 5 microbenchmark: stream two vectors in, add them
// element-wise, stream the sum out. "The actual logic is minimal and the
// workload is strictly bound by off-chip memory accesses" (§6.2.2). The
// input and output vectors are partitioned across four engine sets each,
// with one AES and one HMAC engine per set and 512-byte chunks.
type VecAdd struct {
	// Bytes is the per-vector size (the x-axis of Figure 5).
	Bytes int
	// Variantless bases for A, B, and OUT partitions.
}

const (
	vecParts   = 4
	vecChunk   = 512
	vecABase   = 0x0000_0000
	vecBBase   = 0x1000_0000
	vecOutBase = 0x2000_0000
)

// NewVecAdd builds the workload; params may set "bytes".
func NewVecAdd(params map[string]string) (Workload, error) {
	v := &VecAdd{Bytes: 1 << 20}
	if s, ok := params["bytes"]; ok {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("accel: vecadd bytes %q invalid", s)
		}
		v.Bytes = n
	}
	// Round up so every partition is chunk-aligned.
	part := (v.Bytes/vecParts + vecChunk - 1) / vecChunk * vecChunk
	v.Bytes = part * vecParts
	return v, nil
}

func init() { Register("vecadd", NewVecAdd) }

// Name implements Workload.
func (v *VecAdd) Name() string { return "vecadd" }

func (v *VecAdd) part() int { return v.Bytes / vecParts }

// ShieldConfig partitions each vector across four engine sets (§6.2.2).
func (v *VecAdd) ShieldConfig(variant Variant) shield.Config {
	var regions []shield.RegionConfig
	add := func(prefix string, base uint64) {
		for i := 0; i < vecParts; i++ {
			regions = append(regions, shield.RegionConfig{
				Name:       fmt.Sprintf("%s%d", prefix, i),
				Base:       base + uint64(i*v.part()),
				Size:       uint64(v.part()),
				ChunkSize:  vecChunk,
				AESEngines: 1,
				SBox:       variant.SBox,
				KeySize:    variant.KeySize,
				MAC:        variant.MAC(),
				// Streaming: modest double-buffer, no replay counters.
				BufferBytes: 2 * vecChunk,
			})
		}
	}
	add("a", vecABase)
	add("b", vecBBase)
	add("o", vecOutBase)
	return shield.Config{Regions: regions, Registers: 8}
}

// Inputs generates the two source vectors, split per partition region.
func (v *VecAdd) Inputs(rng *rand.Rand) map[string][]byte {
	out := make(map[string][]byte, 2*vecParts)
	for i := 0; i < vecParts; i++ {
		a := make([]byte, v.part())
		b := make([]byte, v.part())
		rng.Read(a)
		rng.Read(b)
		out[fmt.Sprintf("a%d", i)] = a
		out[fmt.Sprintf("b%d", i)] = b
	}
	return out
}

// vecStrip is the streaming granularity: a multi-chunk strip moves
// through the port's pipelined burst engine per transfer. Long strips
// amortise the pipeline fill/drain across many windows, keeping the
// engine sets in steady state.
const vecStrip = 256 * vecChunk

// Run streams the addition partition by partition in multi-chunk strips:
// each strip of A and B rides the pipelined read path, the ALU adds, and
// the sum strip rides the pipelined write path.
func (v *VecAdd) Run(ctx *Ctx) error {
	bufA := make([]byte, vecStrip)
	bufB := make([]byte, vecStrip)
	bufO := make([]byte, vecStrip)
	for p := 0; p < vecParts; p++ {
		aBase := uint64(vecABase + p*v.part())
		bBase := uint64(vecBBase + p*v.part())
		oBase := uint64(vecOutBase + p*v.part())
		for off := 0; off < v.part(); off += vecStrip {
			n := v.part() - off
			if n > vecStrip {
				n = vecStrip
			}
			if err := ctx.ReadStream(aBase+uint64(off), bufA[:n]); err != nil {
				return err
			}
			if err := ctx.ReadStream(bBase+uint64(off), bufB[:n]); err != nil {
				return err
			}
			for i := 0; i < n; i += 4 {
				s := binary.LittleEndian.Uint32(bufA[i:]) + binary.LittleEndian.Uint32(bufB[i:])
				binary.LittleEndian.PutUint32(bufO[i:], s)
			}
			// Wide vector ALU: one cycle per 64-byte beat.
			ctx.Compute(uint64(n / 64))
			if err := ctx.WriteStream(oBase+uint64(off), bufO[:n]); err != nil {
				return err
			}
		}
	}
	return nil
}

// OutputRegions implements Workload.
func (v *VecAdd) OutputRegions() []string {
	out := make([]string, vecParts)
	for i := range out {
		out[i] = fmt.Sprintf("o%d", i)
	}
	return out
}

// Check verifies o[i] = a[i] + b[i] element-wise.
func (v *VecAdd) Check(inputs, outputs map[string][]byte) error {
	for p := 0; p < vecParts; p++ {
		a := inputs[fmt.Sprintf("a%d", p)]
		b := inputs[fmt.Sprintf("b%d", p)]
		o := outputs[fmt.Sprintf("o%d", p)]
		if len(o) != len(a) {
			return fmt.Errorf("partition %d: output size %d, want %d", p, len(o), len(a))
		}
		for i := 0; i < len(a); i += 4 {
			want := binary.LittleEndian.Uint32(a[i:]) + binary.LittleEndian.Uint32(b[i:])
			if got := binary.LittleEndian.Uint32(o[i:]); got != want {
				return fmt.Errorf("partition %d offset %d: got %d, want %d", p, i, got, want)
			}
		}
	}
	return nil
}
