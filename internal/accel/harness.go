package accel

import (
	"fmt"
	"math/rand"

	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/perf"
	"shef/internal/shield"
)

// RunResult reports one workload execution under the cycle model.
type RunResult struct {
	// Cycles is the total simulated execution time.
	Cycles uint64
	// MemCycles is the memory-path component (Shield or bare DRAM).
	MemCycles uint64
	// ComputeCycles is the accelerator datapath component.
	ComputeCycles uint64
	// Report is the Shield's activity report (zero value for bare runs).
	Report shield.Report
}

// Seconds converts to wall-clock time under params.
func (r RunResult) Seconds(p perf.Params) float64 { return p.Seconds(r.Cycles) }

// combine implements the top-level time composition: fixed host/DMA
// initialisation, then memory and compute overlapped.
func combine(init, memCycles, compute uint64) uint64 {
	busy := memCycles
	if compute > busy {
		busy = compute
	}
	return init + busy
}

// bareRegs is an unsecured register file for baseline runs.
type bareRegs struct{ regs []uint64 }

func (b *bareRegs) ReadReg(i int) (uint64, uint64, error) {
	if i < 0 || i >= len(b.regs) {
		return 0, 0, fmt.Errorf("accel: register %d out of range", i)
	}
	return b.regs[i], 1, nil
}

func (b *bareRegs) WriteReg(i int, v uint64) (uint64, error) {
	if i < 0 || i >= len(b.regs) {
		return 0, fmt.Errorf("accel: register %d out of range", i)
	}
	b.regs[i] = v
	return 1, nil
}

// RunBare executes w without a Shield: inputs land in DRAM as plaintext,
// the accelerator talks straight to the Shell port. This is the
// "unsecured version" baseline of Figures 5-6.
func RunBare(w Workload, params perf.Params, seed int64) (RunResult, error) {
	cfg := w.ShieldConfig(V128x16) // layout only; no shield is built
	dram := mem.NewDRAM(dramSizeFor(cfg), params)
	rng := rand.New(rand.NewSource(seed))
	inputs := w.Inputs(rng)
	for name, img := range inputs {
		rc := regionByName(cfg, name)
		if rc == nil {
			return RunResult{}, fmt.Errorf("accel: workload %s writes to unconfigured region %q", w.Name(), name)
		}
		if _, err := dram.WriteBurst(rc.Base, img); err != nil {
			return RunResult{}, err
		}
	}
	dram.ResetStats()
	// The baseline keeps the Shield configuration's buffering
	// microarchitecture — chunked line buffers over the same regions —
	// with the cryptography removed, so the comparison isolates the cost
	// of security rather than of caching.
	cache := newBareCachePort(cfg, dram, params)
	ctx := &Ctx{Mem: cache, Regs: &bareRegs{regs: make([]uint64, 32)}}
	if err := w.Run(ctx); err != nil {
		return RunResult{}, err
	}
	if err := cache.Flush(); err != nil {
		return RunResult{}, err
	}
	outputs := make(map[string][]byte)
	for _, name := range w.OutputRegions() {
		rc := regionByName(cfg, name)
		buf := make([]byte, rc.Size)
		if _, err := dram.ReadBurst(rc.Base, buf); err != nil {
			return RunResult{}, err
		}
		outputs[name] = buf
	}
	if err := w.Check(inputs, outputs); err != nil {
		return RunResult{}, fmt.Errorf("accel: %s bare run produced wrong output: %w", w.Name(), err)
	}
	mem := cache.MemCycles()
	res := RunResult{
		MemCycles:     mem,
		ComputeCycles: ctx.ComputeCycles(),
	}
	res.Cycles = combine(params.InitCycles, mem, ctx.ComputeCycles())
	return res, nil
}

// RunShielded executes w behind a Shield built from its own configuration
// for the given variant, exercising the complete ShEF data path: the Data
// Owner seals inputs, the untrusted host DMAs them, the Shield decrypts on
// access, and results are exported and verified on the owner side.
func RunShielded(w Workload, v Variant, params perf.Params, seed int64) (RunResult, error) {
	cfg := w.ShieldConfig(v)
	if err := cfg.Validate(); err != nil {
		return RunResult{}, err
	}
	dram := mem.NewDRAM(dramSizeFor(cfg), params)
	ocm := mem.NewOCM(1 << 33) // harness does not model OCM pressure here
	priv, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		return RunResult{}, err
	}
	sh, err := shield.New(cfg, priv, dram, ocm, params)
	if err != nil {
		return RunResult{}, err
	}
	dek := make([]byte, 32)
	rand.New(rand.NewSource(seed ^ 0x5EED)).Read(dek)
	lk, err := keywrap.Wrap(sh.PublicKey(), dek, nil)
	if err != nil {
		return RunResult{}, err
	}
	if err := sh.ProvisionLoadKey(lk); err != nil {
		return RunResult{}, err
	}
	return RunOnShield(w, sh, dram, dek, params, seed)
}

// RunOnShield executes w against an already provisioned Shield: the Data
// Owner seals inputs, the untrusted host DMAs them through dram, the
// workload runs, and results are exported and verified on the owner side.
// hostapp uses this to run workloads on platforms assembled through the
// full boot + attestation workflow.
func RunOnShield(w Workload, sh *shield.Shield, dram *mem.DRAM, dek []byte, params perf.Params, seed int64) (RunResult, error) {
	cfg := sh.Config()

	// Data Owner: seal inputs; host: DMA them in; Shield: mark preloaded.
	rng := rand.New(rand.NewSource(seed))
	inputs := w.Inputs(rng)
	for name, img := range inputs {
		rc := regionByName(cfg, name)
		if rc == nil {
			return RunResult{}, fmt.Errorf("accel: workload %s writes to unconfigured region %q", w.Name(), name)
		}
		layout, err := sh.Layout(name)
		if err != nil {
			return RunResult{}, err
		}
		ct, tags, err := shield.SealRegionData(*rc, layout.RegionID, dek, img)
		if err != nil {
			return RunResult{}, err
		}
		if err := dram.RawWrite(layout.DataBase, ct); err != nil {
			return RunResult{}, err
		}
		if err := dram.RawWrite(layout.TagBase, tags); err != nil {
			return RunResult{}, err
		}
		if err := sh.MarkPreloaded(name); err != nil {
			return RunResult{}, err
		}
	}
	sh.ResetStats() // provisioning/preload is not part of the measured phase
	shieldInit := params.ShieldInitCycles

	ctx := &Ctx{Mem: sh, Regs: sh.Registers()}
	if err := w.Run(ctx); err != nil {
		return RunResult{}, err
	}
	if err := sh.Flush(); err != nil {
		return RunResult{}, err
	}

	// Host DMAs results out; Data Owner opens and checks them.
	outputs := make(map[string][]byte)
	for _, name := range w.OutputRegions() {
		rc := regionByName(cfg, name)
		layout, err := sh.Layout(name)
		if err != nil {
			return RunResult{}, err
		}
		ct, err := dram.RawRead(layout.DataBase, int(layout.DataSize))
		if err != nil {
			return RunResult{}, err
		}
		tags, err := dram.RawRead(layout.TagBase, int(layout.TagSize))
		if err != nil {
			return RunResult{}, err
		}
		var counters []uint32
		if rc.Freshness {
			snap, err := sh.CounterSnapshot(name)
			if err != nil {
				return RunResult{}, err
			}
			counters = snap.Counters
		}
		img, err := shield.OpenRegionData(*rc, layout.RegionID, dek, ct, tags, counters)
		if err != nil {
			return RunResult{}, fmt.Errorf("accel: opening %s results: %w", name, err)
		}
		outputs[name] = img
	}
	if err := w.Check(inputs, outputs); err != nil {
		return RunResult{}, fmt.Errorf("accel: %s shielded run produced wrong output: %w", w.Name(), err)
	}

	rep := sh.Report()
	res := RunResult{
		MemCycles:     rep.MemoryCycles(),
		ComputeCycles: ctx.ComputeCycles(),
		Report:        rep,
	}
	res.Cycles = combine(params.InitCycles+shieldInit, rep.MemoryCycles()+rep.RegisterCycles, ctx.ComputeCycles())
	return res, nil
}

// Overhead is the normalized execution time the paper plots: shielded
// cycles over bare cycles.
func Overhead(shielded, bare RunResult) float64 {
	if bare.Cycles == 0 {
		return 0
	}
	return float64(shielded.Cycles) / float64(bare.Cycles)
}

func regionByName(cfg shield.Config, name string) *shield.RegionConfig {
	for i := range cfg.Regions {
		if cfg.Regions[i].Name == name {
			return &cfg.Regions[i]
		}
	}
	return nil
}

// dramSizeFor sizes the simulated device memory to cover all regions plus
// their tag arrays.
func dramSizeFor(cfg shield.Config) uint64 {
	var maxEnd uint64
	var tagBytes uint64
	for _, r := range cfg.Regions {
		if end := r.Base + r.Size; end > maxEnd {
			maxEnd = end
		}
		tagBytes += uint64(r.Chunks() * shield.TagSize)
	}
	const align = 4096
	size := (maxEnd+align-1)/align*align + tagBytes + align
	if size < 1<<20 {
		size = 1 << 20
	}
	return size
}
