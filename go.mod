module shef

go 1.23
