module shef

go 1.24
