package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: shef/internal/shield
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkStreamVsChunked/1MiB-8         	       1	  16770391 ns/op	  62.53 MB/s	         2.346 sim-speedup-x	      2892 sim-stream-MiB/s
--- BENCH: BenchmarkStreamVsChunked/1MiB
    stream_test.go:449: chunked 202752 cyc vs streamed 86436 cyc
PASS
ok  	shef/internal/shield	0.365s
pkg: shef
BenchmarkClusterThroughput-8 	       1	 33061913 ns/op	    331057 sim-ops/sec-4shard
ok  	shef	1.2s
`

func TestParseBenchOutput(t *testing.T) {
	doc, err := parseBenchOutput(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	byName := map[string]BenchEntry{}
	for _, e := range doc.Benchmarks {
		byName[e.Name] = e
	}
	st, ok := byName["BenchmarkStreamVsChunked/1MiB"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", byName)
	}
	if st.Package != "shef/internal/shield" {
		t.Errorf("package = %q", st.Package)
	}
	if st.Metrics["sim-speedup-x"] != 2.346 || st.Metrics["ns/op"] != 16770391 {
		t.Errorf("metrics = %v", st.Metrics)
	}
	if byName["BenchmarkClusterThroughput"].Metrics["sim-ops/sec-4shard"] != 331057 {
		t.Error("cluster metric lost")
	}
}

func TestCheckRegressionGate(t *testing.T) {
	base := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "A", Metrics: map[string]float64{"sim-speedup-x": 2.0, "ns/op": 100}},
		{Name: "B", Metrics: map[string]float64{"sim-ops/sec-4shard": 1000}},
	}}
	// Within budget: 10% down on one gated metric, host noise ignored.
	pr := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "A", Metrics: map[string]float64{"sim-speedup-x": 1.8, "ns/op": 900}},
		{Name: "B", Metrics: map[string]float64{"sim-ops/sec-4shard": 1500}},
	}}
	if regs, _, _ := checkRegression(base, pr, 0.20, 0.50); len(regs) != 0 {
		t.Fatalf("within-budget run flagged: %v", regs)
	}
	// Beyond budget: 30% down must fail.
	pr.Benchmarks[0].Metrics["sim-speedup-x"] = 1.4
	regs, _, _ := checkRegression(base, pr, 0.20, 0.50)
	if len(regs) != 1 || !strings.Contains(regs[0], "sim-speedup-x") {
		t.Fatalf("regression not flagged: %v", regs)
	}
	// A benchmark vanishing from the PR run is a regression too.
	pr.Benchmarks = pr.Benchmarks[1:]
	if regs, _, _ := checkRegression(base, pr, 0.20, 0.50); len(regs) == 0 {
		t.Fatal("missing benchmark not flagged")
	}
}

func TestCheckFailsWhenGatedMetricDisappears(t *testing.T) {
	base := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "A", Metrics: map[string]float64{"sim-flush-speedup-x": 2.1, "sim-flush-MiB/s": 3000, "ns/op": 100}},
	}}
	// The benchmark still runs, but one gated metric vanished (e.g. the
	// ReportMetric call was dropped): the gate must fail, not silently
	// pass, and must name every vanished metric.
	pr := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "A", Metrics: map[string]float64{"sim-flush-MiB/s": 3000, "ns/op": 90}},
	}}
	regs, _, _ := checkRegression(base, pr, 0.20, 0.50)
	if len(regs) != 1 || !strings.Contains(regs[0], "sim-flush-speedup-x") || !strings.Contains(regs[0], "missing") {
		t.Fatalf("vanished metric not flagged: %v", regs)
	}
	// Both gated metrics vanish along with a whole benchmark: one
	// regression line per metric, none silently dropped.
	pr.Benchmarks = nil
	regs, _, _ = checkRegression(base, pr, 0.20, 0.50)
	if len(regs) != 2 {
		t.Fatalf("want one regression per vanished gated metric, got %v", regs)
	}
	// A non-gated metric vanishing (host noise) is not a failure.
	pr.Benchmarks = []BenchEntry{{Name: "A", Metrics: map[string]float64{"sim-flush-speedup-x": 2.1, "sim-flush-MiB/s": 3000}}}
	if regs, _, _ := checkRegression(base, pr, 0.20, 0.50); len(regs) != 0 {
		t.Fatalf("vanished ns/op flagged: %v", regs)
	}
}

func TestCheckAllocsGate(t *testing.T) {
	// A clean run: real benchmarks report zero allocs, others are exempt.
	pr := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "BenchmarkRealReadStream/hardware", Metrics: map[string]float64{"allocs/op": 0, "real-stream-MB/s": 1200}},
		{Name: "BenchmarkRealFlush/scalar", Metrics: map[string]float64{"allocs/op": 0, "real-flush-MB/s": 300}},
		{Name: "BenchmarkStreamVsChunked/1MiB", Metrics: map[string]float64{"allocs/op": 12, "sim-speedup-x": 2.3}},
	}}
	regs, report := checkAllocs(pr)
	if len(regs) != 0 {
		t.Fatalf("clean run flagged: %v", regs)
	}
	if len(report) != 2 {
		t.Fatalf("report = %v, want both Real benchmarks listed", report)
	}
	// Any allocation in a Real benchmark fails absolutely.
	pr.Benchmarks[0].Metrics["allocs/op"] = 2
	if regs, _ := checkAllocs(pr); len(regs) != 1 || !strings.Contains(regs[0], "2 allocs/op") {
		t.Fatalf("allocating Real benchmark not flagged: %v", regs)
	}
	// A Real benchmark run without -benchmem fails too: unmeasured is
	// indistinguishable from regressed.
	delete(pr.Benchmarks[0].Metrics, "allocs/op")
	if regs, _ := checkAllocs(pr); len(regs) != 1 || !strings.Contains(regs[0], "-benchmem") {
		t.Fatalf("unmeasured Real benchmark not flagged: %v", regs)
	}
}

func TestParseBenchmem(t *testing.T) {
	// -benchmem appends B/op and allocs/op pairs; the real benchmarks add
	// a real-stream-MB/s metric. All must survive the round trip.
	const line = `pkg: shef/internal/shield
BenchmarkRealReadStream/hardware-4   	     100	   1081592 ns/op	 969.45 MB/s	       969.5 real-stream-MB/s	       0 B/op	       0 allocs/op
`
	doc, err := parseBenchOutput(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(doc.Benchmarks))
	}
	e := doc.Benchmarks[0]
	if e.Name != "BenchmarkRealReadStream/hardware" {
		t.Errorf("name = %q", e.Name)
	}
	m := e.Metrics
	if m["real-stream-MB/s"] != 969.5 || m["allocs/op"] != 0 || m["B/op"] != 0 {
		t.Errorf("metrics = %v", m)
	}
	if !allocGated(e.Name) {
		t.Error("real benchmark not alloc-gated")
	}
	if allocGated("BenchmarkStreamVsChunked/1MiB") {
		t.Error("sim benchmark alloc-gated")
	}
}

func TestCheckRealFamilyBudget(t *testing.T) {
	base := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "BenchmarkRealReadStream", Metrics: map[string]float64{"real-stream-MB/s": 1000}},
		{Name: "A", Metrics: map[string]float64{"sim-speedup-x": 2.0}},
	}}
	// 40% down on a real- metric: inside the loose wall-clock budget,
	// but the same drop on a sim- metric would fail — the families gate
	// with different budgets.
	pr := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "BenchmarkRealReadStream", Metrics: map[string]float64{"real-stream-MB/s": 600}},
		{Name: "A", Metrics: map[string]float64{"sim-speedup-x": 2.0}},
	}}
	if regs, _, _ := checkRegression(base, pr, 0.20, 0.50); len(regs) != 0 {
		t.Fatalf("within-real-budget run flagged: %v", regs)
	}
	// 60% down breaches even the loose budget: the floor holds.
	pr.Benchmarks[0].Metrics["real-stream-MB/s"] = 400
	regs, _, _ := checkRegression(base, pr, 0.20, 0.50)
	if len(regs) != 1 || !strings.Contains(regs[0], "real-stream-MB/s") {
		t.Fatalf("real-family floor not enforced: %v", regs)
	}
	// A vanished real- metric fails like a vanished sim- one.
	delete(pr.Benchmarks[0].Metrics, "real-stream-MB/s")
	if regs, _, _ := checkRegression(base, pr, 0.20, 0.50); len(regs) != 1 {
		t.Fatalf("vanished real metric not flagged: %v", regs)
	}
}

func TestCheckFloors(t *testing.T) {
	// Healthy scaling, degraded retention, and tenant fairness pass and
	// are reported.
	pr := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "BenchmarkClusterThroughput", Metrics: map[string]float64{"real-cluster-scale-x": 5.4}},
		{Name: "BenchmarkClusterDegraded", Metrics: map[string]float64{"real-degraded-retain-x": 0.8}},
		{Name: "BenchmarkTenantFairness", Metrics: map[string]float64{"real-tenant-fairness-x": 0.7}},
	}}
	regs, report := checkFloors(pr)
	if len(regs) != 0 || len(report) != 3 {
		t.Fatalf("healthy floors: regs=%v report=%v", regs, report)
	}
	// A starved victim fails the fairness floor absolutely.
	pr.Benchmarks[2].Metrics["real-tenant-fairness-x"] = 0.1
	if regs, _ := checkFloors(pr); len(regs) != 1 || !strings.Contains(regs[0], "real-tenant-fairness-x") {
		t.Fatalf("starved victim not flagged: %v", regs)
	}
	pr.Benchmarks[2].Metrics["real-tenant-fairness-x"] = 0.7
	// Flat scaling fails absolutely, baseline or not.
	pr.Benchmarks[0].Metrics["real-cluster-scale-x"] = 1.3
	if regs, _ := checkFloors(pr); len(regs) != 1 || !strings.Contains(regs[0], "floor") {
		t.Fatalf("flat scaling not flagged: %v", regs)
	}
	// Collapsed degraded-mode throughput fails the same way.
	pr.Benchmarks[0].Metrics["real-cluster-scale-x"] = 5.4
	pr.Benchmarks[1].Metrics["real-degraded-retain-x"] = 0.05
	if regs, _ := checkFloors(pr); len(regs) != 1 || !strings.Contains(regs[0], "real-degraded-retain-x") {
		t.Fatalf("collapsed degraded throughput not flagged: %v", regs)
	}
	// Not measuring a floor metric fails too — with the remediation hint
	// telling the operator how to regenerate the PR document.
	pr.Benchmarks[1].Metrics["real-degraded-retain-x"] = 0.8
	delete(pr.Benchmarks[0].Metrics, "real-cluster-scale-x")
	regs, _ = checkFloors(pr)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("unmeasured scaling not flagged: %v", regs)
	}
	if !strings.Contains(regs[0], "-json") {
		t.Fatalf("missing-floor regression lacks the regenerate hint: %v", regs)
	}
}

func TestCheckCeilings(t *testing.T) {
	// A bounded lookup overhead passes and is reported.
	pr := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "BenchmarkRegionLookupScaling", Metrics: map[string]float64{"sim-region-lookup-overhead-pct": 0.16}},
	}}
	regs, report := checkCeilings(pr)
	if len(regs) != 0 || len(report) != 1 {
		t.Fatalf("healthy ceiling: regs=%v report=%v", regs, report)
	}
	// Overhead past the ceiling fails absolutely.
	pr.Benchmarks[0].Metrics["sim-region-lookup-overhead-pct"] = 7.2
	if regs, _ := checkCeilings(pr); len(regs) != 1 || !strings.Contains(regs[0], "ceiling") {
		t.Fatalf("over-ceiling overhead not flagged: %v", regs)
	}
	// Not measuring the overhead fails with the regenerate hint.
	delete(pr.Benchmarks[0].Metrics, "sim-region-lookup-overhead-pct")
	regs, _ = checkCeilings(pr)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") || !strings.Contains(regs[0], "-json") {
		t.Fatalf("unmeasured overhead not flagged: %v", regs)
	}
}

func TestCeilingMetricExcludedFromRegressionGate(t *testing.T) {
	if gatedMetric("sim-region-lookup-overhead-pct") {
		t.Fatal("ceiling metric must not gate higher-is-better")
	}
	if !gatedMetric("sim-region-lookup-hit-pct") {
		t.Fatal("hit-rate metric should gate higher-is-better")
	}
	// An overhead improvement (a drop) must not read as a throughput
	// regression against the baseline.
	base := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "BenchmarkRegionLookupScaling", Metrics: map[string]float64{"sim-region-lookup-overhead-pct": 2.0}},
	}}
	pr := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "BenchmarkRegionLookupScaling", Metrics: map[string]float64{"sim-region-lookup-overhead-pct": 0.1}},
	}}
	if regs, _, _ := checkRegression(base, pr, 0.20, 0.50); len(regs) != 0 {
		t.Fatalf("overhead improvement flagged as regression: %v", regs)
	}
}

func TestCheckListsNewMetrics(t *testing.T) {
	base := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "A", Metrics: map[string]float64{"sim-speedup-x": 2.0}},
	}}
	pr := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "A", Metrics: map[string]float64{"sim-speedup-x": 2.1, "sim-prefetch-speedup-x": 1.9, "ns/op": 50}},
		{Name: "C", Metrics: map[string]float64{"sim-flush-speedup-x": 2.1, "MB/s": 80}},
	}}
	regs, _, newM := checkRegression(base, pr, 0.20, 0.50)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	// Gated metrics new to the PR run are listed (and only gated ones):
	// the report tells the operator the baseline wants regenerating.
	if len(newM) != 2 {
		t.Fatalf("new metrics = %v, want the two new sim-* entries", newM)
	}
	for _, want := range []string{"sim-prefetch-speedup-x", "sim-flush-speedup-x"} {
		found := false
		for _, line := range newM {
			if strings.Contains(line, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("new metric %s not listed in %v", want, newM)
		}
	}
}
