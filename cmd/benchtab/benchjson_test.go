package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: shef/internal/shield
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkStreamVsChunked/1MiB-8         	       1	  16770391 ns/op	  62.53 MB/s	         2.346 sim-speedup-x	      2892 sim-stream-MiB/s
--- BENCH: BenchmarkStreamVsChunked/1MiB
    stream_test.go:449: chunked 202752 cyc vs streamed 86436 cyc
PASS
ok  	shef/internal/shield	0.365s
pkg: shef
BenchmarkClusterThroughput-8 	       1	 33061913 ns/op	    331057 sim-ops/sec-4shard
ok  	shef	1.2s
`

func TestParseBenchOutput(t *testing.T) {
	doc, err := parseBenchOutput(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	byName := map[string]BenchEntry{}
	for _, e := range doc.Benchmarks {
		byName[e.Name] = e
	}
	st, ok := byName["BenchmarkStreamVsChunked/1MiB"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", byName)
	}
	if st.Package != "shef/internal/shield" {
		t.Errorf("package = %q", st.Package)
	}
	if st.Metrics["sim-speedup-x"] != 2.346 || st.Metrics["ns/op"] != 16770391 {
		t.Errorf("metrics = %v", st.Metrics)
	}
	if byName["BenchmarkClusterThroughput"].Metrics["sim-ops/sec-4shard"] != 331057 {
		t.Error("cluster metric lost")
	}
}

func TestCheckRegressionGate(t *testing.T) {
	base := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "A", Metrics: map[string]float64{"sim-speedup-x": 2.0, "ns/op": 100}},
		{Name: "B", Metrics: map[string]float64{"sim-ops/sec-4shard": 1000}},
	}}
	// Within budget: 10% down on one gated metric, host noise ignored.
	pr := &BenchDoc{Benchmarks: []BenchEntry{
		{Name: "A", Metrics: map[string]float64{"sim-speedup-x": 1.8, "ns/op": 900}},
		{Name: "B", Metrics: map[string]float64{"sim-ops/sec-4shard": 1500}},
	}}
	if regs, _ := checkRegression(base, pr, 0.20); len(regs) != 0 {
		t.Fatalf("within-budget run flagged: %v", regs)
	}
	// Beyond budget: 30% down must fail.
	pr.Benchmarks[0].Metrics["sim-speedup-x"] = 1.4
	regs, _ := checkRegression(base, pr, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "sim-speedup-x") {
		t.Fatalf("regression not flagged: %v", regs)
	}
	// A benchmark vanishing from the PR run is a regression too.
	pr.Benchmarks = pr.Benchmarks[1:]
	if regs, _ := checkRegression(base, pr, 0.20); len(regs) == 0 {
		t.Fatal("missing benchmark not flagged")
	}
}
