package main

// Benchmark-trajectory support: `benchtab -json` converts `go test -bench`
// text output into a stable JSON document (the BENCH_pr.json artifact CI
// publishes on every PR), and `benchtab -check` compares such a document
// against the committed BENCH_baseline.json, failing when a headline
// simulated-throughput metric regresses beyond the threshold.
//
// Two families of metrics gate the build:
//
//   - Deterministic simulated metrics (the "sim-" family: sim-speedup-x,
//     sim-ops/sec-*, sim-stream-MiB/s) gate against the baseline: they come
//     from the cycle model, so they are immune to CI host noise.
//   - allocs/op of the real-throughput benchmarks (names containing
//     "Real") gates absolutely at zero: the steady-state seal/open window
//     loop is allocation-free by design, and any new per-op allocation is
//     a hot-path regression regardless of the host.
//
//   - Real wall-clock metrics (the "real-" family: real-stream-MB/s,
//     real-flush-MB/s, real-cluster-scale-x) gate with their own, looser
//     budget (-real-threshold): they vary with CI hardware, so the budget
//     absorbs host noise, but a floor keeps a real win from silently
//     rotting. real-cluster-scale-x additionally gates absolutely: the
//     8-shard/1-shard real throughput ratio must stay ≥ 2.0 regardless of
//     the baseline — that ratio is host-relative (both ends run on the
//     same machine), and it is the PR sequence's headline scaling claim.
//
//   - Overhead metrics gate with absolute ceilings (lower is better):
//     sim-region-lookup-overhead-pct must stay ≤ 5% — region resolution
//     on the burst-decode path has to stay O(1) however many tenant
//     zones are resident. Ceiling metrics are excluded from the
//     higher-is-better baseline comparison.
//
// Plain ns/op and ops/sec-* values are recorded in the artifacts for
// trend-watching only.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"shef/internal/analysis"
)

// BenchDoc is the JSON document of one benchmark run.
type BenchDoc struct {
	GeneratedBy string       `json:"generated_by"`
	Shefvet     *ShefvetInfo `json:"shefvet,omitempty"`
	Benchmarks  []BenchEntry `json:"benchmarks"`
}

// ShefvetInfo records, in the document header, which static-analysis
// suite the producing tree was checked with: benchmark numbers are only
// comparable when both trees satisfied the same invariants (zero-alloc
// hot paths, deterministic walk order), so the gate's identity travels
// with the artifact.
type ShefvetInfo struct {
	Version   string   `json:"version"`
	Analyzers []string `json:"analyzers"`
}

// BenchEntry is one benchmark's parsed result line.
type BenchEntry struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseBenchOutput converts `go test -bench` text into a BenchDoc. Lines
// it does not recognise (logs, PASS/ok, goos headers) are skipped.
func parseBenchOutput(r io.Reader) (*BenchDoc, error) {
	doc := &BenchDoc{
		GeneratedBy: "benchtab -json",
		Shefvet:     &ShefvetInfo{Version: analysis.Version, Analyzers: analysis.Names()},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		// Strip the GOMAXPROCS suffix (BenchmarkFoo-8) so names are
		// stable across runner shapes.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := BenchEntry{Name: name, Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			e.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool { return doc.Benchmarks[i].key() < doc.Benchmarks[j].key() })
	return doc, nil
}

// key identifies a benchmark across documents: package-qualified, so
// same-named benchmarks in different packages never collide.
func (e BenchEntry) key() string { return e.Package + "." + e.Name }

// emitJSON runs the -json mode: stdin bench text to stdout JSON.
func emitJSON(r io.Reader, w io.Writer) error {
	doc, err := parseBenchOutput(r)
	if err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("benchtab -json: no benchmark lines found on stdin")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func loadBenchDoc(path string) (*BenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc BenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// gatedMetric reports whether a metric name participates in the
// higher-is-better regression gate: deterministic simulated throughput
// or real wall-clock family. Ceiling-gated metrics are lower-is-better
// and are excluded — comparing them as throughput would flag an
// improvement (a drop) as a regression.
func gatedMetric(name string) bool {
	if ceilingMetric(name) {
		return false
	}
	return strings.HasPrefix(name, "sim-") || strings.HasPrefix(name, "real-")
}

// realMetric selects the real wall-clock family, which gates with the
// looser -real-threshold budget.
func realMetric(name string) bool {
	return strings.HasPrefix(name, "real-")
}

// floorGate is one absolute metric floor: a gate that holds baseline or
// no baseline, because the metric is host-relative (both ends of the
// ratio run on the same machine) and protects a headline claim.
type floorGate struct {
	metric string
	floor  float64
	what   string // what failing the floor means, for the regression line
}

// floorGates: real-cluster-scale-x is the scaling headline (8-shard real
// ops/sec must stay ≥ 2x the 1-shard rate); real-degraded-retain-x is
// the resilience headline (a replicated cluster with one shard crashed
// must retain ≥ 25% of its healthy throughput — degraded, not dead).
var floorGates = []floorGate{
	{"real-cluster-scale-x", 2.0, "real cluster throughput no longer scales with shards"},
	{"real-degraded-retain-x", 0.25, "single-node-failure throughput collapsed — degraded mode is not serving"},
	{"real-tenant-fairness-x", 0.25, "a noisy neighbour starves well-behaved tenants — fair admission is not protecting victims"},
}

// ceilingGate is one absolute metric ceiling: the lower-is-better dual
// of floorGate, for overhead metrics that must stay bounded.
type ceilingGate struct {
	metric  string
	ceiling float64
	what    string
}

// ceilingGates: the virtual-region lookup cache must keep per-access
// region resolution effectively free — the simulated lookup charge stays
// under 5% of the data-path cycles even with ~1k tenant zones resident.
var ceilingGates = []ceilingGate{
	{"sim-region-lookup-overhead-pct", 5.0, "region lookup is no longer O(1) — the TLB cache stopped absorbing multi-tenant table growth"},
}

// ceilingMetric reports whether a metric gates with an absolute ceiling
// (lower is better).
func ceilingMetric(name string) bool {
	for _, g := range ceilingGates {
		if g.metric == name {
			return true
		}
	}
	return false
}

// checkCeilings applies the absolute ceilings to the PR run. Like the
// floors, absence is a failure: a run that stopped measuring an overhead
// bound must not pass the gate that exists to enforce it.
func checkCeilings(pr *BenchDoc) (regressions, report []string) {
	for _, g := range ceilingGates {
		found := false
		for _, e := range pr.Benchmarks {
			v, ok := e.Metrics[g.metric]
			if !ok {
				continue
			}
			found = true
			if v > g.ceiling {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %s = %.2f, ceiling %.2f — %s", e.key(), g.metric, v, g.ceiling, g.what))
			} else {
				report = append(report, fmt.Sprintf("%s %s: %.2f (ceiling %.2f)", e.Name, g.metric, v, g.ceiling))
			}
		}
		if !found {
			regressions = append(regressions, fmt.Sprintf(
				"%s missing from PR run — the benchmark did not report it; %s", g.metric, regenHint))
		}
	}
	return regressions, report
}

// regenHint is the remediation line for a missing gated metric.
const regenHint = "regenerate the PR document with `go test -bench . -benchmem ./... | benchtab -json > BENCH_pr.json`"

// checkFloors applies the absolute floors to the PR run. A floor
// metric's absence is a failure — a run that stopped measuring a
// headline must not pass the gate that exists to protect it — and the
// regression line carries the regeneration hint.
func checkFloors(pr *BenchDoc) (regressions, report []string) {
	for _, g := range floorGates {
		found := false
		for _, e := range pr.Benchmarks {
			v, ok := e.Metrics[g.metric]
			if !ok {
				continue
			}
			found = true
			if v < g.floor {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %s = %.2f, floor %.2f — %s", e.key(), g.metric, v, g.floor, g.what))
			} else {
				report = append(report, fmt.Sprintf("%s %s: %.2f (floor %.2f)", e.Name, g.metric, v, g.floor))
			}
		}
		if !found {
			regressions = append(regressions, fmt.Sprintf(
				"%s missing from PR run — the benchmark did not report it; %s", g.metric, regenHint))
		}
	}
	return regressions, report
}

// allocGated reports whether a benchmark's allocs/op gates absolutely at
// zero: the real-throughput benchmarks exercise the Shield's steady-state
// seal/open window loop, which is allocation-free by design.
func allocGated(benchName string) bool {
	return strings.Contains(benchName, "Real")
}

// checkAllocs applies the absolute zero-alloc gate to a PR run: every
// alloc-gated benchmark must report allocs/op (so the bench run must use
// -benchmem) and it must be exactly zero. An absent metric fails the gate
// — unmeasured is indistinguishable from regressed.
func checkAllocs(pr *BenchDoc) (regressions, report []string) {
	for _, e := range pr.Benchmarks {
		if !allocGated(e.Name) {
			continue
		}
		v, ok := e.Metrics["allocs/op"]
		switch {
		case !ok:
			regressions = append(regressions, fmt.Sprintf("%s: allocs/op not reported — run the bench with -benchmem", e.key()))
		case v != 0:
			regressions = append(regressions, fmt.Sprintf("%s: %g allocs/op, want 0 (steady-state window loop must not allocate)", e.key(), v))
		default:
			report = append(report, fmt.Sprintf("%s allocs/op: 0", e.Name))
		}
	}
	sort.Strings(regressions)
	sort.Strings(report)
	return regressions, report
}

// sortedGated returns an entry's gated metric names in stable order.
func (e BenchEntry) sortedGated() []string {
	var out []string
	for metric := range e.Metrics {
		if gatedMetric(metric) {
			out = append(out, metric)
		}
	}
	sort.Strings(out)
	return out
}

// checkRegression compares pr against baseline. It returns the list of
// human-readable regressions (empty means the gate passes), a report of
// every gated comparison for the CI log, and the gated metrics that
// appear in the PR run but not in the baseline (signalling the baseline
// wants regenerating so they gate future PRs). Every gated baseline
// metric must be present in the PR run: a benchmark or metric that
// disappears is a regression, never a silent pass — a vanished metric is
// indistinguishable from an unmeasured one.
func checkRegression(baseline, pr *BenchDoc, threshold, realThreshold float64) (regressions, report, newMetrics []string) {
	prByName := map[string]BenchEntry{}
	for _, e := range pr.Benchmarks {
		prByName[e.key()] = e
	}
	baseByName := map[string]BenchEntry{}
	for _, base := range baseline.Benchmarks {
		baseByName[base.key()] = base
		cur, ok := prByName[base.key()]
		for _, metric := range base.sortedGated() {
			baseVal := base.Metrics[metric]
			if !ok {
				regressions = append(regressions, fmt.Sprintf("%s: benchmark missing from PR run (baseline %s=%.3g)", base.key(), metric, baseVal))
				continue
			}
			curVal, have := cur.Metrics[metric]
			if !have {
				regressions = append(regressions, fmt.Sprintf("%s: metric %s missing from PR run (baseline %.3g)", base.key(), metric, baseVal))
				continue
			}
			if baseVal <= 0 {
				continue // present, but not comparable as higher-is-better
			}
			budget := threshold
			if realMetric(metric) {
				budget = realThreshold
			}
			ratio := curVal / baseVal
			line := fmt.Sprintf("%s %s: baseline %.3f, pr %.3f (%+.1f%%)", base.Name, metric, baseVal, curVal, (ratio-1)*100)
			report = append(report, line)
			if curVal < baseVal*(1-budget) {
				regressions = append(regressions, line+fmt.Sprintf(" — exceeds the %.0f%% regression budget", budget*100))
			}
		}
	}
	for _, cur := range pr.Benchmarks {
		base, ok := baseByName[cur.key()]
		for _, metric := range cur.sortedGated() {
			if _, have := base.Metrics[metric]; !ok || !have {
				newMetrics = append(newMetrics, fmt.Sprintf("%s %s=%.3g", cur.key(), metric, cur.Metrics[metric]))
			}
		}
	}
	sort.Strings(report)
	sort.Strings(regressions)
	sort.Strings(newMetrics)
	return regressions, report, newMetrics
}

// runCheck runs the -check mode and returns the process exit code.
func runCheck(baselinePath, prPath string, threshold, realThreshold float64, w io.Writer) int {
	baseline, err := loadBenchDoc(baselinePath)
	if err != nil {
		fmt.Fprintf(w, "benchtab -check: %v\n", err)
		return 2
	}
	pr, err := loadBenchDoc(prPath)
	if err != nil {
		fmt.Fprintf(w, "benchtab -check: %v\n", err)
		return 2
	}
	fmt.Fprintf(w, "benchtab -check: running under %s (%s)\n",
		analysis.Version, strings.Join(analysis.Names(), ", "))
	if pr.Shefvet != nil {
		fmt.Fprintf(w, "benchtab -check: PR document produced under %s (%s)\n",
			pr.Shefvet.Version, strings.Join(pr.Shefvet.Analyzers, ", "))
	}
	regressions, report, newMetrics := checkRegression(baseline, pr, threshold, realThreshold)
	allocRegressions, allocReport := checkAllocs(pr)
	regressions = append(regressions, allocRegressions...)
	floorRegressions, floorReport := checkFloors(pr)
	regressions = append(regressions, floorRegressions...)
	ceilRegressions, ceilReport := checkCeilings(pr)
	regressions = append(regressions, ceilRegressions...)
	fmt.Fprintf(w, "benchtab -check: %d gated metrics vs %s (sim budget %.0f%%, real budget %.0f%%), %d zero-alloc gates, %d absolute floors, %d absolute ceilings\n",
		len(report), baselinePath, threshold*100, realThreshold*100, len(allocReport), len(floorGates), len(ceilingGates))
	for _, line := range report {
		fmt.Fprintln(w, "  ", line)
	}
	for _, line := range allocReport {
		fmt.Fprintln(w, "  ", line)
	}
	for _, line := range floorReport {
		fmt.Fprintln(w, "  ", line)
	}
	for _, line := range ceilReport {
		fmt.Fprintln(w, "  ", line)
	}
	if len(newMetrics) > 0 {
		fmt.Fprintln(w, "NEW METRICS (in PR run, not in baseline — regenerate the baseline so they gate):")
		for _, line := range newMetrics {
			fmt.Fprintln(w, "  ", line)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintln(w, "REGRESSIONS:")
		for _, r := range regressions {
			fmt.Fprintln(w, "  ", r)
		}
		return 1
	}
	fmt.Fprintln(w, "benchmark gate passed")
	return 0
}
