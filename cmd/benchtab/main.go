// Command benchtab regenerates the paper's evaluation tables and figures
// (§6) from the simulated ShEF stack and prints them alongside the
// paper-reported values.
//
// Usage:
//
//	benchtab -all                 # everything at quick scale
//	benchtab -table 2 -scale paper
//	benchtab -fig 6 -scale paper
//	benchtab -boot
//
// CI modes for the benchmark trajectory:
//
//	go test -bench=. ./... | benchtab -json > BENCH_pr.json
//	benchtab -check -baseline BENCH_baseline.json -pr BENCH_pr.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"shef/internal/experiments"
	"shef/internal/profiling"
)

func main() {
	table := flag.Int("table", 0, "regenerate Table N (1, 2, or 3)")
	fig := flag.Int("fig", 0, "regenerate Figure N (5 or 6)")
	bootFlag := flag.Bool("boot", false, "print the §6.1 boot timeline")
	cluster := flag.Bool("cluster", false, "run the SDP cluster throughput sweeps (ops/sec vs shards and goroutines)")
	oramFlag := flag.Bool("oram", false, "run the Path ORAM path-cost sweep (serial vs batched, §5.2.2)")
	tenantsFlag := flag.Bool("tenants", false, "run the multi-tenant region-lookup scaling sweep (zones vs lookup overhead)")
	all := flag.Bool("all", false, "regenerate everything")
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or paper")
	profileFlag := flag.Bool("profile", false, "run the cluster sweeps under the profiling harness and print the on/off-CPU attribution table")
	profileDir := flag.String("profiledir", "profiles", "output directory for -profile (cpu/mutex/block pprof + trace)")
	jsonFlag := flag.Bool("json", false, "parse `go test -bench` output on stdin into JSON on stdout")
	checkFlag := flag.Bool("check", false, "compare -pr against -baseline and fail on regressions")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline document for -check")
	prPath := flag.String("pr", "BENCH_pr.json", "PR document for -check")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional regression of sim-gated metrics for -check")
	realThreshold := flag.Float64("real-threshold", 0.50, "allowed fractional regression of real- wall-clock metrics for -check (looser: they vary with host)")
	flag.Parse()

	if *jsonFlag {
		if err := emitJSON(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *checkFlag {
		os.Exit(runCheck(*baselinePath, *prPath, *threshold, *realThreshold, os.Stdout))
	}

	scale := experiments.Quick
	if *scaleFlag == "paper" {
		scale = experiments.Paper
	}

	if *profileFlag {
		runProfile(*profileDir, scale)
		return
	}

	any := false
	if *all || *table == 1 {
		any = true
		printTable1()
	}
	if *all || *fig == 5 {
		any = true
		printFigure5(scale)
	}
	if *all || *table == 2 {
		any = true
		printTable2()
	}
	if *all || *fig == 6 {
		any = true
		printFigure6(scale)
	}
	if *all || *table == 3 {
		any = true
		printTable3(scale)
	}
	if *all || *bootFlag {
		any = true
		printBoot()
	}
	if *all || *cluster {
		any = true
		printCluster(scale)
	}
	if *all || *oramFlag {
		any = true
		printORAM(scale)
	}
	if *all || *tenantsFlag {
		any = true
		printTenants(scale)
	}
	if !any {
		flag.Usage()
	}
}

func printTable1() {
	fmt.Println("== Table 1: Shield component utilization on AWS F1 ==")
	fmt.Printf("%-16s %10s %14s %14s\n", "Component", "BRAM", "LUT", "REG")
	for _, r := range experiments.Table1() {
		fmt.Printf("%-16s %4d (%4.2f%%) %6d (%4.2f%%) %6d (%4.2f%%)\n",
			r.Component, r.Res.BRAM, r.Util.BRAM, r.Res.LUT, r.Util.LUT, r.Res.REG, r.Util.REG)
	}
	fmt.Println("paper: Controller 2348/547, Engine Set 2/1068/2508, Reg.If 3251/1902,")
	fmt.Println("       AES-4x 2435/2347, AES-16x 2898/2347, HMAC 3926/2636, PMAC 2545/2570")
	fmt.Println()
}

func printFigure5(scale experiments.Scale) {
	fmt.Println("== Figure 5: vecadd throughput overhead vs input size ==")
	rows, err := experiments.Figure5(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-14s %s\n", "input/vec", "config", "normalized exec time")
	for _, r := range rows {
		fmt.Printf("%9dKB  %-14s %.2fx\n", r.InputKB, r.Variant, r.Overhead)
	}
	mm, err := experiments.MatMulOverhead(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matmul (AES-128/4x): %.2fx  (paper §6.2.2: max 1.26x, less pronounced than vecadd)\n", mm)
	fmt.Println("paper shape: AES/4x grows crypto-bound with size; AES/16x stays below ~1.5x")
	fmt.Println()
}

func printTable2() {
	fmt.Println("== Table 2: SDP Shield configuration sweep (1MB file, 4KB auth blocks) ==")
	rows, err := experiments.Table2()
	if err != nil {
		log.Fatal(err)
	}
	paper := []int{298, 297, 59, 20, 20}
	fmt.Printf("%-26s %10s %10s\n", "config", "measured", "paper")
	for i, r := range rows {
		fmt.Printf("%-26s %8.0f%% %9d%%\n", r.Label, r.Overhead*100, paper[i])
	}
	fmt.Println()
}

func printFigure6(scale experiments.Scale) {
	fmt.Println("== Figure 6: workload execution time across Shield configurations ==")
	rows, err := experiments.Figure6(scale)
	if err != nil {
		log.Fatal(err)
	}
	paper := map[string]string{
		"conv":      "1.20-1.35x",
		"digitrec":  "1.85-3.15x",
		"affine":    "1.41-2.22x",
		"dnnweaver": "3.20-3.83x (2.31x with PMAC)",
		"bitcoin":   "~1.0x",
	}
	last := ""
	for _, r := range rows {
		if r.Workload != last {
			fmt.Printf("%-10s (paper: %s)\n", r.Workload, paper[r.Workload])
			last = r.Workload
		}
		fmt.Printf("    %-18s %.2fx\n", r.Variant, r.Overhead)
	}
	fmt.Println()
}

func printTable3(scale experiments.Scale) {
	fmt.Println("== Table 3: inclusive Shield utilization (largest config per accelerator) ==")
	rows, err := experiments.Table3(scale)
	if err != nil {
		log.Fatal(err)
	}
	paper := map[string][3]float64{
		"conv":      {2.9, 11, 5.2},
		"digitrec":  {0.71, 3.3, 1.4},
		"affine":    {2.1, 11, 5.2},
		"dnnweaver": {3.1, 7.1, 3.5},
		"bitcoin":   {0, 1.4, 0.42},
	}
	fmt.Printf("%-10s %28s %28s\n", "workload", "measured (BRAM/LUT/REG)", "paper (BRAM/LUT/REG)")
	for _, r := range rows {
		p := paper[r.Workload]
		fmt.Printf("%-10s %8.2f%% %7.2f%% %7.2f%% %9.2f%% %7.2f%% %7.2f%%\n",
			r.Workload, r.Util.BRAM, r.Util.LUT, r.Util.REG, p[0], p[1], p[2])
	}
	fmt.Println()
}

func printCluster(scale experiments.Scale) {
	fmt.Println("== SDP cluster throughput: ops/sec vs fleet size (8 client goroutines) ==")
	rows, err := experiments.ClusterThroughput(nil, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%7s %8s %7s %10s %12s %16s %14s\n", "shards", "workers", "ops", "elapsed", "ops/sec", "sim max-busy cyc", "sim ops/sec")
	for _, r := range rows {
		fmt.Printf("%7d %8d %7d %10s %12.0f %16d %14.0f\n",
			r.Shards, r.Workers, r.Ops, r.Elapsed.Round(time.Millisecond), r.OpsPerSec, r.SimMaxBusy, r.SimOpsPerSec)
	}
	fmt.Println("(host ops/sec is bounded by real cores; sim ops/sec is the fleet model: ops over the busiest shard's cycles)")
	fmt.Println()
	fmt.Println("== SDP cluster throughput: ops/sec vs offered load (4 shards) ==")
	rows, err = experiments.ClusterWorkerSweep(nil, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%7s %8s %7s %10s %12s\n", "shards", "workers", "ops", "elapsed", "ops/sec")
	for _, r := range rows {
		fmt.Printf("%7d %8d %7d %10s %12.0f\n",
			r.Shards, r.Workers, r.Ops, r.Elapsed.Round(time.Millisecond), r.OpsPerSec)
	}
	fmt.Println()
}

// runProfile wraps the cluster sweeps in the profiling harness: CPU,
// mutex, and block profiles plus an execution trace land in dir, and the
// merged on/off-CPU attribution table prints after the sweep output. This
// is the CLI face of internal/profiling — the same files feed
// `go tool pprof` / `go tool trace` for deeper digs.
func runProfile(dir string, scale experiments.Scale) {
	fmt.Printf("== cluster sweeps under the profiling harness (profiles in %s/) ==\n\n", dir)
	tbl, err := profiling.Run(profiling.Config{Dir: dir, Trace: true, TopN: 12}, func() error {
		printCluster(scale)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tbl.String())
	fmt.Printf("\nprofiles: %s/cpu.pprof %s/mutex.pprof %s/block.pprof %s/trace.out\n", dir, dir, dir, dir)
}

func printORAM(scale experiments.Scale) {
	fmt.Println("== Path ORAM path cost: serial per-bucket vs batched gather (§5.2.2) ==")
	serial, batched, err := experiments.ORAMPathSweep(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %16s %16s\n", "mode", "cycles/access", "amplification")
	for _, p := range []experiments.ORAMPoint{serial, batched} {
		fmt.Printf("%-20s %16.0f %15.1fx\n", p.Mode, p.CyclesPerAccess, p.Amplification)
	}
	fmt.Printf("batched path speedup at %d blocks × %d B: %.2fx (TestORAMBatchedSpeedup gates ≥1.5x at 4096)\n",
		batched.Blocks, batched.BlockSize, serial.CyclesPerAccess/batched.CyclesPerAccess)
	fmt.Println("(every access moves one root-to-leaf path; the batched mode streams it as one")
	fmt.Println(" scatter-gather transaction per contiguous run with fill/drain paid once)")
	fmt.Println()
}

func printTenants(scale experiments.Scale) {
	fmt.Println("== Multi-tenant scaling: region-lookup cost vs resident zones ==")
	rows, err := experiments.TenantSweep(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%7s %12s %10s %14s %14s\n", "zones", "host ns/op", "hit rate", "lookup cycles", "overhead")
	for _, r := range rows {
		fmt.Printf("%7d %12.0f %9.2f%% %14d %13.3f%%\n",
			r.Zones, r.NsPerOp, r.HitPct, r.LookupCycles, r.OverheadPct)
	}
	fmt.Println("(one hot zone, the rest idle; the TLB-style lookup cache keeps per-access")
	fmt.Println(" resolution O(1) — benchtab -check ceilings the overhead at 5%)")
	fmt.Println()
}

func printBoot() {
	fmt.Println("== §6.1: end-to-end secure boot time (Ultra96 model) ==")
	stages, total, vm, f1 := experiments.BootTimeline()
	for _, s := range stages {
		fmt.Printf("    %-28s %5.2f s\n", s.Stage, s.Seconds)
	}
	fmt.Printf("    %-28s %5.2f s   (paper: 5.1 s)\n", "total", total)
	fmt.Printf("references: VM boot ~%.0f s, F1 bitstream load %.1f s\n", vm, f1)
	fmt.Println()
}
