// Command shefvet runs the repo's invariant suite (internal/analysis):
// the custom analyzers that mechanically enforce DESIGN.md's zero-alloc
// hot paths, lock ordering, atomics discipline, deterministic
// flush/eviction/ORAM ordering, guarded instrumentation sites, and
// typed-error boundaries.
//
// Two modes share one binary:
//
//	shefvet [./...]             standalone: load packages via the go
//	                            command, run every analyzer, print
//	                            findings, exit 2 if there are any
//	go vet -vettool=$(which shefvet) ./...
//	                            unitchecker: the go command drives the
//	                            per-package loading and hands the tool a
//	                            vet.cfg describing each compilation unit
//
// Flags: -list prints the suite, -json emits machine-readable findings
// (the same shape benchtab embeds in its run header).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"shef/internal/analysis"
)

func main() {
	// The go command probes `shefvet -V=full` to fold the tool's
	// identity into its build-cache key; the reply must be
	// "<name> version <fingerprint>". Answer before flag parsing so the
	// probe never trips over the rest of the command line.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			fmt.Printf("shefvet version %s\n", analysis.Version)
			return
		}
		// `go vet` also probes `shefvet -flags` for the analyzer flags it
		// may forward; the suite exposes none to vet.
		if arg == "-flags" || arg == "--flags" {
			fmt.Println("[]")
			return
		}
	}

	listFlag := flag.Bool("list", false, "print the analyzer suite and exit")
	jsonFlag := flag.Bool("json", false, "emit machine-readable findings on stdout")
	flag.Parse()
	args := flag.Args()

	if *listFlag {
		fmt.Printf("shefvet %s\n", analysis.Version)
		for _, a := range analysis.All() {
			fmt.Printf("  %-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	// A single *.cfg argument is the go command's unitchecker handoff.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args, *jsonFlag))
}

func standalone(patterns []string, asJSON bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "shefvet:", err)
		return 1
	}
	pkgs, err := analysis.LoadPackages(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shefvet:", err)
		return 1
	}
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		diags = append(diags,
			analysis.RunAnalyzers(p.Fset, p.Files, p.Types, p.Info, analysis.All())...)
	}
	if asJSON {
		out := struct {
			Shefvet     string                `json:"shefvet"`
			Analyzers   []string              `json:"analyzers"`
			Packages    int                   `json:"packages"`
			Diagnostics []analysis.Diagnostic `json:"diagnostics"`
		}{analysis.Version, analysis.Names(), len(pkgs), diags}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "shefvet:", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetConfig is the subset of the go command's vet.cfg the tool needs
// (cmd/go/internal/work's vetConfig, by JSON field name).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shefvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "shefvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The suite keeps no cross-package facts, but the go command expects
	// the declared output file to exist before it will cache the unit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("shefvet\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "shefvet:", err)
			return 1
		}
	}
	// Fact-only units (dependencies) and the standard library have
	// nothing to analyze under repo-specific invariants.
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] {
		return 0
	}

	lp, err := analysis.TypeCheckVetPackage(cfg.ImportPath, cfg.Dir, cfg.GoFiles,
		cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "shefvet:", err)
		return 1
	}
	diags := analysis.RunAnalyzers(lp.Fset, lp.Files, lp.Types, lp.Info, analysis.All())
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
