// Command shefctl drives the complete ShEF workflow from the Data Owner's
// seat: manufacture and boot a simulated FPGA, fetch and attest an
// accelerator bitstream from an IP Vendor (in-process or a remote shefd),
// provision the Shield, run the workload through the full sealed data
// path, and report simulated performance against the unshielded baseline.
//
// Usage:
//
//	shefctl -design dnnweaver                      # all-in-one demo
//	shefctl -design vecadd -vendor 127.0.0.1:9800  # against a shefd
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"

	"shef/internal/accel"
	"shef/internal/boot"
	"shef/internal/hostapp"
)

func main() {
	design := flag.String("design", "vecadd", "accelerator design")
	params := flag.String("params", "", "design parameters, k=v[,k=v...]")
	variant := flag.String("variant", "128/16x", "shield engine variant")
	vendorAddr := flag.String("vendor", "", "remote shefd address (empty = in-process vendor)")
	seed := flag.Int64("seed", 1, "input generation seed")
	serial := flag.String("serial", "", "device serial (empty = unique per invocation, so concurrent owners against one shefd don't collide in the CA)")
	flag.Parse()

	v, err := parseVariant(*variant)
	if err != nil {
		log.Fatal(err)
	}
	opts := hostapp.Options{
		Design:  *design,
		Params:  parseParams(*params),
		Variant: v,
		Serial:  *serial,
	}
	if opts.Serial == "" {
		// Each invocation manufactures a fresh simulated device with a fresh
		// key. Two devices sharing a serial end badly: the vendor's CA keeps
		// one key per serial, so whichever registered last wins and the
		// other's attestation fails. PID alone can collide across hosts or
		// recycle, so add random bytes.
		var suffix [4]byte
		if _, err := rand.Read(suffix[:]); err != nil {
			log.Fatal(err)
		}
		opts.Serial = fmt.Sprintf("f1-sim-%05d-%x", os.Getpid(), suffix)
	}

	fmt.Println("== ShEF workflow ==")
	fmt.Printf("design %q, shield variant %s\n\n", *design, v)

	fmt.Println("[1] secure boot (modelled Ultra96 timeline, paper §6.1):")
	for _, st := range boot.Timeline {
		fmt.Printf("    %-28s %5.2f s\n", st.Name, st.Seconds)
	}
	fmt.Printf("    %-28s %5.2f s  (vs ~%.0f s VM boot, %.1f s F1 bitstream load)\n\n",
		"total", boot.TotalBootSeconds(), boot.VMBootSeconds, boot.F1BitstreamLoadSeconds)

	var p *hostapp.Platform
	if *vendorAddr == "" {
		p, err = hostapp.Build(opts)
	} else {
		dial := hostapp.DialFunc(func() (io.ReadWriteCloser, error) {
			return net.Dial("tcp", *vendorAddr)
		})
		p, err = hostapp.BuildAgainstVendor(opts, *design, dial, nil)
	}
	if err != nil {
		log.Fatalf("shefctl: workflow failed: %v", err)
	}
	hash := p.Enc.Hash()
	fmt.Println("[2] remote attestation: OK")
	fmt.Printf("    device serial     %s\n", p.Kernel.Device().Serial)
	kh := p.Kernel.KernelHash()
	fmt.Printf("    security kernel   %x\n", kh[:8])
	fmt.Printf("    bitstream hash    %x\n", hash[:8])
	fmt.Printf("    shield regions    %d, registers %d\n\n",
		len(p.Manifest.Shield.Regions), p.Manifest.Shield.Registers)

	fmt.Println("[3] shielded execution (inputs sealed by the data owner, results verified):")
	res, err := p.Run(*seed)
	if err != nil {
		log.Fatalf("shefctl: run failed: %v", err)
	}
	pp := *p.Options.Perf
	fmt.Printf("    simulated time    %d cycles (%.3f ms at %.0f MHz)\n",
		res.Cycles, 1000*res.Seconds(pp), pp.ClockHz/1e6)

	w2, err := accel.New(*design, opts.Params)
	if err == nil {
		if bare, err := accel.RunBare(w2, pp, *seed); err == nil {
			fmt.Printf("    unshielded        %d cycles\n", bare.Cycles)
			fmt.Printf("    overhead          %.2fx\n", accel.Overhead(res, bare))
		}
	}

	if ev := p.MonitorOnce(); len(ev) == 0 {
		fmt.Println("\n[4] runtime port monitoring: clean")
	} else {
		fmt.Printf("\n[4] runtime port monitoring: TAMPER %v\n", ev)
	}
}

func parseParams(s string) map[string]string {
	out := map[string]string{}
	for _, kv := range splitComma(s) {
		for i := 0; i < len(kv); i++ {
			if kv[i] == '=' {
				out[kv[:i]] = kv[i+1:]
				break
			}
		}
	}
	return out
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func parseVariant(s string) (accel.Variant, error) {
	switch s {
	case "128/4x":
		return accel.V128x4, nil
	case "128/16x":
		return accel.V128x16, nil
	case "256/4x":
		return accel.V256x4, nil
	case "256/16x":
		return accel.V256x16, nil
	case "128/16x+pmac":
		return accel.V128x16PMAC, nil
	}
	return accel.Variant{}, fmt.Errorf("unknown variant %q", s)
}
