// Command shefd runs an IP Vendor attestation server: it compiles an
// accelerator product (design + Shield configuration) into an encrypted
// bitstream and serves Data Owner requests over TCP — bitstream fetch,
// device registration, and host-proxied remote attestation (paper
// Figure 3).
//
// Sessions are multiplexed: every connection is an isolated owner session
// on its own goroutine, so any number of Data Owners can fetch, register,
// and attest concurrently. SIGINT/SIGTERM trigger a graceful shutdown that
// drains in-flight attestations before exiting.
//
// Pair it with `shefctl -vendor <addr>` in another process to run the
// two-party workflow across a real network connection.
//
// Usage:
//
//	shefd -addr :9800 -design vecadd -params bytes=1048576
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shef/internal/accel"
	"shef/internal/crypto/engine"
	"shef/internal/hostapp"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9800", "listen address")
	design := flag.String("design", "vecadd", "accelerator design to offer")
	params := flag.String("params", "", "design parameters, k=v[,k=v...]")
	variant := flag.String("variant", "128/16x", "shield engine variant (128/4x, 128/16x, 256/4x, 256/16x, +pmac suffix)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	debugAddr := flag.String("debug", "", "serve net/http/pprof and /debug/stats on this address (off when empty)")
	maxSessions := flag.Int("max-sessions", 0, "admission control: max concurrent owner sessions (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "admission control: connections allowed to wait for a session slot before shedding")
	retryAfter := flag.Duration("retry-after", 100*time.Millisecond, "backoff hint sent with shed (busy) responses")
	maxTenants := flag.Int("max-tenants", 0, "multi-tenant: max distinct tenants holding protection zones (0 = unlimited)")
	tenantQuota := flag.Uint64("tenant-quota", 0, "multi-tenant: per-tenant zone byte budget (0 = unlimited)")
	tenantFair := flag.Bool("tenant-fair", false, "multi-tenant: weighted-fair admission under overload")
	flag.Parse()

	v, err := parseVariant(*variant)
	if err != nil {
		log.Fatal(err)
	}
	opts := hostapp.Options{
		Design:  *design,
		Params:  parseParams(*params),
		Variant: v,
	}
	vendor, product, err := hostapp.BuildVendor(opts)
	if err != nil {
		log.Fatalf("shefd: building vendor: %v", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("shefd: %v", err)
	}
	cfg := hostapp.ServerConfig{
		MaxSessions:      *maxSessions,
		MaxQueue:         *maxQueue,
		RetryAfter:       *retryAfter,
		MaxTenants:       *maxTenants,
		TenantQuotaBytes: *tenantQuota,
		TenantFair:       *tenantFair,
	}
	srv := hostapp.NewVendorServerWith(vendor, ln, cfg)
	fmt.Printf("shefd: serving product %q on %s\n", product, srv.Addr())
	if *maxSessions > 0 {
		fmt.Printf("shefd: admission control: %d session(s), queue %d, retry-after %s\n", *maxSessions, *maxQueue, *retryAfter)
	}
	if srv.Tenants() != nil {
		fmt.Printf("shefd: multi-tenant: max %s tenant(s), quota %s byte(s)/tenant, fair admission %v\n",
			unlimited(*maxTenants), unlimited(int(*tenantQuota)), *tenantFair)
	}
	fmt.Printf("shefd: designs available in this build: %v\n", accel.Designs())
	fmt.Printf("shefd: %s\n", engine.Select())

	dbg, err := startDebug(*debugAddr, srv)
	if err != nil {
		log.Fatalf("shefd: debug server: %v", err)
	}
	if dbg != nil {
		fmt.Printf("shefd: debug endpoints on http://%s/debug/pprof/ and /debug/stats\n", dbg.Addr())
		defer dbg.Close()
	}

	errc := make(chan error, 1)
	go func() {
		errc <- srv.Serve(func(err error) {
			fmt.Fprintf(os.Stderr, "shefd: %v\n", err)
		})
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("shefd: %v: draining sessions (up to %s)\n", sig, *drain)
		if err := srv.Shutdown(*drain); err != nil {
			fmt.Fprintf(os.Stderr, "shefd: %v\n", err)
		}
		<-errc
	case err := <-errc:
		if err != nil && err != hostapp.ErrServerClosed {
			log.Fatalf("shefd: %v", err)
		}
	}
	st := srv.Stats()
	fmt.Printf("shefd: served %d session(s), %d failed, %d shed\n", st.Served, st.Failed, st.Shed)
	for _, ts := range st.Tenants {
		fmt.Printf("shefd:   tenant %q: served %d, shed %d, %d zone(s) holding %d byte(s)\n",
			ts.Tenant, ts.Served, ts.Shed, ts.Zones, ts.ZoneBytes)
	}
}

// unlimited renders a 0-means-unlimited bound for the startup banner.
func unlimited(n int) string {
	if n == 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d", n)
}

// startDebug stands up the opt-in observability listener. An empty addr —
// the default — serves nothing: debug surface is strictly explicit.
func startDebug(addr string, srv *hostapp.VendorServer) (*hostapp.DebugServer, error) {
	if addr == "" {
		return nil, nil
	}
	return hostapp.NewDebugServer(addr, func() any {
		stats := map[string]any{
			"server":   srv.Stats(),
			"sessions": srv.Sessions(),
			"engine":   engine.Select().String(),
		}
		if reg := srv.Tenants(); reg != nil {
			stats["tenants"] = reg.Stats()
		}
		return stats
	})
}

func parseParams(s string) map[string]string {
	out := map[string]string{}
	if s == "" {
		return out
	}
	for _, kv := range splitComma(s) {
		for i := 0; i < len(kv); i++ {
			if kv[i] == '=' {
				out[kv[:i]] = kv[i+1:]
				break
			}
		}
	}
	return out
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func parseVariant(s string) (accel.Variant, error) {
	switch s {
	case "128/4x":
		return accel.V128x4, nil
	case "128/16x":
		return accel.V128x16, nil
	case "256/4x":
		return accel.V256x4, nil
	case "256/16x":
		return accel.V256x16, nil
	case "128/16x+pmac":
		return accel.V128x16PMAC, nil
	}
	return accel.Variant{}, fmt.Errorf("unknown variant %q", s)
}
