package main

import (
	"encoding/json"
	"flag"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"shef/internal/attest"
	"shef/internal/hostapp"
)

// TestDebugOffByDefault pins the operational contract: no -debug flag, no
// debug listener. startDebug("") must be a no-op, and the flag's default
// must be empty so a plain `shefd` invocation serves nothing on any debug
// port.
func TestDebugOffByDefault(t *testing.T) {
	dbg, err := startDebug("", nil)
	if err != nil || dbg != nil {
		t.Fatalf("startDebug(\"\") = %v, %v; want nil, nil", dbg, err)
	}
}

// newTestServer builds a VendorServer without accepting connections —
// enough for the stats provider.
func newTestServer(t *testing.T) *hostapp.VendorServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return hostapp.NewVendorServer(&attest.Vendor{CA: attest.NewCA()}, ln)
}

// TestDebugServesProfilesAndStats is the -debug regression test: the
// listener must serve the live pprof index, the profile endpoints, and
// the JSON stats document, then shut down cleanly.
func TestDebugServesProfilesAndStats(t *testing.T) {
	srv := newTestServer(t)
	dbg, err := startDebug("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + dbg.Addr().String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d, body %q", code, body)
	}
	if code, _ := get("/debug/pprof/mutex"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/mutex = %d", code)
	}

	code, body := get("/debug/stats")
	if code != http.StatusOK {
		t.Fatalf("/debug/stats = %d", code)
	}
	var doc struct {
		Server   hostapp.ServerStats   `json:"server"`
		Sessions []hostapp.SessionInfo `json:"sessions"`
		Engine   string                `json:"engine"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("stats endpoint returned invalid JSON: %v\n%s", err, body)
	}
	if doc.Engine == "" {
		t.Fatal("stats document missing the engine selection")
	}
	if doc.Sessions == nil || len(doc.Sessions) != 0 {
		t.Fatalf("idle server reported sessions %v", doc.Sessions)
	}

	// Clean shutdown: Close returns without error and the port stops
	// answering — a drained shefd leaves no debug listener behind.
	if err := dbg.Close(); err != nil {
		t.Fatalf("debug server shutdown: %v", err)
	}
	client := &http.Client{Timeout: 500 * time.Millisecond}
	if resp, err := client.Get(base + "/debug/stats"); err == nil {
		resp.Body.Close()
		t.Fatal("debug listener still serving after Close")
	}
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatalf("vendor server drain: %v", err)
	}
}

// TestDebugFlagDefault keeps the flag wiring honest: -debug must exist
// and default to off.
func TestDebugFlagDefault(t *testing.T) {
	fs := flag.NewFlagSet("shefd", flag.ContinueOnError)
	addr := fs.String("debug", "", "")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *addr != "" {
		t.Fatalf("debug default = %q, want empty (off)", *addr)
	}
}
